package model

import (
	"math/cmplx"
	"testing"
)

// viewTestNetwork is a 5-bus meshed network with a radial spur (bus 4 hangs
// off bus 3 via branch 5) and a parallel pair between buses 0 and 1.
func viewTestNetwork() *Network {
	return &Network{
		Name:    "view-test",
		BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: Slack, Vm: 1.04, VMin: 0.9, VMax: 1.1},
			{ID: 2, Type: PV, Vm: 1.02, VMin: 0.9, VMax: 1.1},
			{ID: 3, Type: PQ, Vm: 1, VMin: 0.9, VMax: 1.1, BS: 5},
			{ID: 4, Type: PQ, Vm: 1, VMin: 0.9, VMax: 1.1},
			{ID: 5, Type: PQ, Vm: 1, VMin: 0.9, VMax: 1.1},
		},
		Loads: []Load{
			{Bus: 2, P: 60, Q: 20, InService: true},
			{Bus: 3, P: 40, Q: 10, InService: true},
			{Bus: 4, P: 15, Q: 5, InService: true},
		},
		Gens: []Generator{
			{Bus: 0, P: 80, PMin: 0, PMax: 200, QMin: -80, QMax: 80, VSetpoint: 1.04, InService: true},
			{Bus: 1, P: 40, PMin: 0, PMax: 100, QMin: -50, QMax: 50, VSetpoint: 1.02, InService: true},
		},
		Branches: []Branch{
			{From: 0, To: 1, R: 0.02, X: 0.06, B: 0.03, InService: true},
			{From: 0, To: 1, R: 0.05, X: 0.19, B: 0.02, InService: true}, // parallel circuit
			{From: 0, To: 2, R: 0.06, X: 0.17, B: 0.02, InService: true},
			{From: 1, To: 2, R: 0.04, X: 0.17, B: 0.02, InService: true},
			{From: 1, To: 3, R: 0.05, X: 0.2, B: 0.02, Tap: 0.98, IsTransformer: true, InService: true},
			{From: 3, To: 4, R: 0.08, X: 0.2, B: 0.01, InService: true}, // radial spur
			{From: 2, To: 3, R: 0.03, X: 0.1, B: 0.01, InService: false},
		},
	}
}

func TestOutageViewMaterializeSharesUntouchedSlices(t *testing.T) {
	n := viewTestNetwork()
	v := NewOutageView(n)
	v.OutBranch(2)
	post := v.Materialize()
	if post.Branches[2].InService {
		t.Fatal("outaged branch still in service")
	}
	if n.Branches[2].InService != true {
		t.Fatal("view mutated the base")
	}
	if &post.Buses[0] != &n.Buses[0] || &post.Loads[0] != &n.Loads[0] || &post.Gens[0] != &n.Gens[0] {
		t.Fatal("untouched slices should be shared with the base")
	}
	if &post.Branches[0] == &n.Branches[0] {
		t.Fatal("branch slice must be copied when a branch is outaged")
	}

	v.Reset()
	if !v.BranchInService(2) || v.HasGenChanges() {
		t.Fatal("Reset did not clear the view")
	}
	v.OutGen(1)
	v.SetGenP(0, 123)
	post = v.Materialize()
	if post.Gens[1].InService || post.Gens[0].P != 123 {
		t.Fatalf("gen view not applied: %+v", post.Gens)
	}
	if n.Gens[1].InService != true || n.Gens[0].P != 80 {
		t.Fatal("gen view mutated the base")
	}
	if &post.Branches[0] != &n.Branches[0] {
		t.Fatal("branch slice should be shared for a generation-only view")
	}
	if !v.GenInService(0) || v.GenInService(1) {
		t.Fatal("GenInService mask wrong")
	}
}

func TestTopologyIslandsMatchesConnectedComponents(t *testing.T) {
	n := viewTestNetwork()
	topo := NewTopology(n)
	comp := make([]int, len(n.Buses))
	stack := make([]int, len(n.Buses))
	for k := range n.Branches {
		post := n.Clone()
		post.Branches[k].InService = false
		refComp, refCount := post.ConnectedComponents()
		if got := topo.Islands(k, comp, stack); got != refCount {
			t.Fatalf("branch %d: Islands = %d, ConnectedComponents = %d", k, got, refCount)
		}
		// Labels must agree up to relabeling: same partition.
		for i := range comp {
			for j := range comp {
				if (comp[i] == comp[j]) != (refComp[i] == refComp[j]) {
					t.Fatalf("branch %d: partition differs at buses %d,%d", k, i, j)
				}
			}
		}
	}
	// skip = -1 removes nothing.
	if got := topo.Islands(-1, comp, stack); got != 1 {
		t.Fatalf("base topology should be one island, got %d", got)
	}
}

func TestPatchBranchOutageMatchesRebuild(t *testing.T) {
	n := viewTestNetwork()
	base := BuildYbus(n)
	for k, br := range n.Branches {
		y := base.Copy()
		patch, ok := y.PatchBranchOutage(n, k)
		if !br.InService {
			if ok {
				t.Fatalf("branch %d: patched an out-of-service branch", k)
			}
			continue
		}
		if !ok {
			t.Fatalf("branch %d: patch refused", k)
		}
		post := n.Clone()
		post.Branches[k].InService = false
		want := BuildYbus(post)
		// Compare every structural entry of the patched matrix against the
		// rebuilt one (the patched pattern is a superset).
		for p, nz := range y.NZ {
			got := y.NZv[p]
			ref := want.At(nz[0], nz[1])
			if cmplx.Abs(got-ref) > 1e-12 {
				t.Fatalf("branch %d: Y[%d,%d] = %v, rebuild %v", k, nz[0], nz[1], got, ref)
			}
		}
		if y.Yff[k] != 0 || y.Yft[k] != 0 || y.Ytf[k] != 0 || y.Ytt[k] != 0 {
			t.Fatalf("branch %d: two-port admittances not zeroed", k)
		}

		// Restore must be bitwise exact, not merely close: sweeps
		// patch/restore hundreds of times on one matrix.
		y.Restore(patch)
		for p := range y.NZv {
			if y.NZv[p] != base.NZv[p] {
				t.Fatalf("branch %d: NZv[%d] not restored exactly: %v vs %v", k, p, y.NZv[p], base.NZv[p])
			}
		}
		if y.Yff[k] != base.Yff[k] || y.Yft[k] != base.Yft[k] || y.Ytf[k] != base.Ytf[k] || y.Ytt[k] != base.Ytt[k] {
			t.Fatalf("branch %d: two-port admittances not restored", k)
		}
	}
}

func TestYbusCopySharesPatternOwnsValues(t *testing.T) {
	n := viewTestNetwork()
	y := BuildYbus(n)
	c := y.Copy()
	if &c.NZ[0] != &y.NZ[0] || &c.RowPtr[0] != &y.RowPtr[0] || &c.DiagIdx[0] != &y.DiagIdx[0] {
		t.Fatal("Copy must share the structural pattern")
	}
	if &c.NZv[0] == &y.NZv[0] || &c.Yff[0] == &y.Yff[0] {
		t.Fatal("Copy must own the numeric values")
	}
	if _, ok := c.PatchBranchOutage(n, 0); !ok {
		t.Fatal("patch failed")
	}
	if y.NZv[y.DiagIdx[0]] == c.NZv[c.DiagIdx[0]] {
		t.Fatal("patching the copy must not touch the original")
	}
}
