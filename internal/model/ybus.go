package model

import (
	"math"
	"math/cmplx"
)

// Ybus is the nodal admittance matrix together with the per-branch
// two-port admittances needed for flow calculations:
//
//	[If]   [Yff Yft] [Vf]
//	[It] = [Ytf Ytt] [Vt]
//
// The matrix is stored densely (cases up to 300 buses keep it small) but a
// nonzero-pattern list is kept so Jacobian assembly can iterate only the
// structural nonzeros.
type Ybus struct {
	N int
	// Y holds the dense row-major admittance matrix.
	Y []complex128
	// Yff, Yft, Ytf, Ytt are indexed by branch position in the originating
	// network's Branches slice; zero for out-of-service branches.
	Yff, Yft, Ytf, Ytt []complex128
	// NZ lists the structural nonzero coordinates (i, j), diagonal
	// included, each exactly once.
	NZ [][2]int
}

// At returns Y[i,j].
func (y *Ybus) At(i, j int) complex128 { return y.Y[i*y.N+j] }

// BuildYbus assembles the admittance matrix of the network's in-service
// branches and bus shunts, following the standard pi-model with an ideal
// tap/phase transformer at the from end (MATPOWER convention).
func BuildYbus(n *Network) *Ybus {
	nb := len(n.Buses)
	nbr := len(n.Branches)
	y := &Ybus{
		N:   nb,
		Y:   make([]complex128, nb*nb),
		Yff: make([]complex128, nbr),
		Yft: make([]complex128, nbr),
		Ytf: make([]complex128, nbr),
		Ytt: make([]complex128, nbr),
	}
	nzSet := make(map[[2]int]bool, nb+4*nbr)
	add := func(i, j int, v complex128) {
		y.Y[i*nb+j] += v
		nzSet[[2]int{i, j}] = true
	}
	for i, b := range n.Buses {
		// Bus shunts are specified as MW / MVAr at 1.0 p.u. voltage.
		add(i, i, complex(b.GS/n.BaseMVA, b.BS/n.BaseMVA))
	}
	for k, br := range n.Branches {
		if !br.InService {
			continue
		}
		ys := 1 / complex(br.R, br.X)
		bc := complex(0, br.B/2)
		tap := br.Tap
		if tap == 0 {
			tap = 1
		}
		t := cmplx.Rect(tap, br.Shift)
		y.Yff[k] = (ys + bc) / complex(tap*tap, 0)
		y.Yft[k] = -ys / cmplx.Conj(t)
		y.Ytf[k] = -ys / t
		y.Ytt[k] = ys + bc
		add(br.From, br.From, y.Yff[k])
		add(br.From, br.To, y.Yft[k])
		add(br.To, br.From, y.Ytf[k])
		add(br.To, br.To, y.Ytt[k])
	}
	y.NZ = make([][2]int, 0, len(nzSet))
	// Deterministic order: walk the dense matrix once.
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if nzSet[[2]int{i, j}] {
				y.NZ = append(y.NZ, [2]int{i, j})
			}
		}
	}
	return y
}

// BranchFlow returns the complex power flow in MVA entering the branch at
// its from and to ends, given bus voltages in rectangular p.u. form.
func (y *Ybus) BranchFlow(n *Network, k int, v []complex128) (sf, st complex128) {
	br := n.Branches[k]
	if !br.InService {
		return 0, 0
	}
	vf, vt := v[br.From], v[br.To]
	ifr := y.Yff[k]*vf + y.Yft[k]*vt
	ito := y.Ytf[k]*vf + y.Ytt[k]*vt
	base := complex(n.BaseMVA, 0)
	return vf * cmplx.Conj(ifr) * base, vt * cmplx.Conj(ito) * base
}

// Injections returns the complex nodal power injections S = V ∘ conj(Y·V)
// in per-unit for the bus voltage vector v.
func (y *Ybus) Injections(v []complex128) []complex128 {
	s := make([]complex128, y.N)
	for i := 0; i < y.N; i++ {
		var acc complex128
		row := y.Y[i*y.N : (i+1)*y.N]
		for j, yij := range row {
			if yij != 0 {
				acc += yij * v[j]
			}
		}
		s[i] = v[i] * cmplx.Conj(acc)
	}
	return s
}

// VoltageVector builds the rectangular complex voltage vector from polar
// magnitude and angle slices.
func VoltageVector(vm, va []float64) []complex128 {
	v := make([]complex128, len(vm))
	for i := range vm {
		v[i] = cmplx.Rect(vm[i], va[i])
	}
	return v
}

// PolarVoltages splits a rectangular voltage vector into magnitudes and
// angles.
func PolarVoltages(v []complex128) (vm, va []float64) {
	vm = make([]float64, len(v))
	va = make([]float64, len(v))
	for i, x := range v {
		vm[i] = cmplx.Abs(x)
		va[i] = math.Atan2(imag(x), real(x))
	}
	return vm, va
}
