package model

import (
	"math"
	"math/cmplx"
	"sort"
)

// Ybus is the nodal admittance matrix together with the per-branch
// two-port admittances needed for flow calculations:
//
//	[If]   [Yff Yft] [Vf]
//	[It] = [Ytf Ytt] [Vt]
//
// The matrix is stored sparsely: NZ lists the structural nonzero
// coordinates in row-major sorted order and NZv holds the aligned values,
// so peak memory is O(nnz) rather than O(nb²) and hot loops (injection
// evaluation, Jacobian assembly) iterate entries directly:
//
//	for p, nz := range y.NZ {
//		i, j, yij := nz[0], nz[1], y.NZv[p]
//		...
//	}
//
// RowPtr gives per-row spans for row-wise access and DiagIdx gives O(1)
// access to diagonal entries (structurally always present).
type Ybus struct {
	N int
	// NZ lists the structural nonzero coordinates (i, j), diagonal
	// included, each exactly once, sorted row-major.
	NZ [][2]int
	// NZv holds the admittance values aligned with NZ.
	NZv []complex128
	// RowPtr has length N+1; row i's entries are NZ[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int
	// DiagIdx[i] is the position of (i, i) in NZ.
	DiagIdx []int
	// Yff, Yft, Ytf, Ytt are indexed by branch position in the originating
	// network's Branches slice; zero for out-of-service branches.
	Yff, Yft, Ytf, Ytt []complex128
}

// At returns Y[i,j] by binary search within row i. Hot loops should
// iterate NZ/NZv or use Diag instead.
func (y *Ybus) At(i, j int) complex128 {
	lo, hi := y.RowPtr[i], y.RowPtr[i+1]
	k := lo + sort.Search(hi-lo, func(k int) bool { return y.NZ[lo+k][1] >= j })
	if k < hi && y.NZ[k][1] == j {
		return y.NZv[k]
	}
	return 0
}

// Diag returns Y[i,i] in O(1).
func (y *Ybus) Diag(i int) complex128 { return y.NZv[y.DiagIdx[i]] }

// yentry is a COO triplet with a packed (row, col) sort key.
type yentry struct {
	key uint64 // i<<32 | j
	v   complex128
}

// BuildYbus assembles the admittance matrix of the network's in-service
// branches and bus shunts, following the standard pi-model with an ideal
// tap/phase transformer at the from end (MATPOWER convention). The sparse
// pattern is built by sort-merge of the at most nb+4·nbr contributions —
// no dense scan, no map.
func BuildYbus(n *Network) *Ybus {
	nb := len(n.Buses)
	nbr := len(n.Branches)
	y := &Ybus{
		N:   nb,
		Yff: make([]complex128, nbr),
		Yft: make([]complex128, nbr),
		Ytf: make([]complex128, nbr),
		Ytt: make([]complex128, nbr),
	}
	ent := make([]yentry, 0, nb+4*nbr)
	add := func(i, j int, v complex128) {
		ent = append(ent, yentry{key: uint64(i)<<32 | uint64(j), v: v})
	}
	for i, b := range n.Buses {
		// Bus shunts are specified as MW / MVAr at 1.0 p.u. voltage. The
		// entry is added even when zero so every diagonal is structural.
		add(i, i, complex(b.GS/n.BaseMVA, b.BS/n.BaseMVA))
	}
	for k, br := range n.Branches {
		if !br.InService {
			continue
		}
		ys := 1 / complex(br.R, br.X)
		bc := complex(0, br.B/2)
		tap := br.Tap
		if tap == 0 {
			tap = 1
		}
		t := cmplx.Rect(tap, br.Shift)
		y.Yff[k] = (ys + bc) / complex(tap*tap, 0)
		y.Yft[k] = -ys / cmplx.Conj(t)
		y.Ytf[k] = -ys / t
		y.Ytt[k] = ys + bc
		add(br.From, br.From, y.Yff[k])
		add(br.From, br.To, y.Yft[k])
		add(br.To, br.From, y.Ytf[k])
		add(br.To, br.To, y.Ytt[k])
	}
	sort.Slice(ent, func(a, b int) bool { return ent[a].key < ent[b].key })

	// Merge duplicates into the aligned NZ/NZv slices.
	y.NZ = make([][2]int, 0, len(ent))
	y.NZv = make([]complex128, 0, len(ent))
	for p := 0; p < len(ent); {
		key := ent[p].key
		v := ent[p].v
		p++
		for p < len(ent) && ent[p].key == key {
			v += ent[p].v
			p++
		}
		y.NZ = append(y.NZ, [2]int{int(key >> 32), int(key & 0xffffffff)})
		y.NZv = append(y.NZv, v)
	}

	y.RowPtr = make([]int, nb+1)
	y.DiagIdx = make([]int, nb)
	row := 0
	for p, nz := range y.NZ {
		for row <= nz[0] {
			y.RowPtr[row] = p
			row++
		}
		if nz[0] == nz[1] {
			y.DiagIdx[nz[0]] = p
		}
	}
	for row <= nb {
		y.RowPtr[row] = len(y.NZ)
		row++
	}
	return y
}

// BranchFlow returns the complex power flow in MVA entering the branch at
// its from and to ends, given bus voltages in rectangular p.u. form.
func (y *Ybus) BranchFlow(n *Network, k int, v []complex128) (sf, st complex128) {
	br := n.Branches[k]
	if !br.InService {
		return 0, 0
	}
	vf, vt := v[br.From], v[br.To]
	ifr := y.Yff[k]*vf + y.Yft[k]*vt
	ito := y.Ytf[k]*vf + y.Ytt[k]*vt
	base := complex(n.BaseMVA, 0)
	return vf * cmplx.Conj(ifr) * base, vt * cmplx.Conj(ito) * base
}

// BranchFlowsInto is the batched form of BranchFlow: one pass over the
// branch list fills sf and st (both length len(n.Branches)) with the
// complex power in MVA entering each branch at its from and to ends.
// Out-of-service branches get zeros, matching BranchFlow exactly — the
// per-branch arithmetic is identical, so batched and scalar results are
// bitwise equal. Sweep tails and result assembly use this with
// caller-owned scratch so per-outage flow evaluation allocates nothing.
func (y *Ybus) BranchFlowsInto(n *Network, v []complex128, sf, st []complex128) {
	base := complex(n.BaseMVA, 0)
	for k := range n.Branches {
		br := &n.Branches[k]
		if !br.InService {
			sf[k], st[k] = 0, 0
			continue
		}
		vf, vt := v[br.From], v[br.To]
		ifr := y.Yff[k]*vf + y.Yft[k]*vt
		ito := y.Ytf[k]*vf + y.Ytt[k]*vt
		sf[k] = vf * cmplx.Conj(ifr) * base
		st[k] = vt * cmplx.Conj(ito) * base
	}
}

// Injections returns the complex nodal power injections S = V ∘ conj(Y·V)
// in per-unit for the bus voltage vector v.
func (y *Ybus) Injections(v []complex128) []complex128 {
	s := make([]complex128, y.N)
	y.InjectionsInto(s, v)
	return s
}

// InjectionsInto is the allocation-free form of Injections, overwriting s
// (length N) in place.
func (y *Ybus) InjectionsInto(s, v []complex128) {
	for i := 0; i < y.N; i++ {
		var acc complex128
		for p := y.RowPtr[i]; p < y.RowPtr[i+1]; p++ {
			acc += y.NZv[p] * v[y.NZ[p][1]]
		}
		s[i] = v[i] * cmplx.Conj(acc)
	}
}

// VoltageVector builds the rectangular complex voltage vector from polar
// magnitude and angle slices.
func VoltageVector(vm, va []float64) []complex128 {
	v := make([]complex128, len(vm))
	VoltageVectorInto(v, vm, va)
	return v
}

// VoltageVectorInto is the allocation-free form of VoltageVector.
func VoltageVectorInto(v []complex128, vm, va []float64) {
	for i := range vm {
		v[i] = cmplx.Rect(vm[i], va[i])
	}
}

// PolarVoltages splits a rectangular voltage vector into magnitudes and
// angles.
func PolarVoltages(v []complex128) (vm, va []float64) {
	vm = make([]float64, len(v))
	va = make([]float64, len(v))
	for i, x := range v {
		vm[i] = cmplx.Abs(x)
		va[i] = math.Atan2(imag(x), real(x))
	}
	return vm, va
}
