package model

import (
	"fmt"
	"math"
	"sync/atomic"
)

// cloneCount and materializeCount tally every deep Clone and view
// Materialize process-wide. They exist for the zero-clone regression tests:
// a sweep that promises "no network copies on the hot path" asserts the
// counters did not move, which is exact where allocation budgets are noisy.
var cloneCount, materializeCount atomic.Int64

// CloneCount returns the process-wide number of Network.Clone calls.
func CloneCount() int64 { return cloneCount.Load() }

// MaterializeCount returns the process-wide number of OutageView.Materialize
// calls.
func MaterializeCount() int64 { return materializeCount.Load() }

// Clone returns a deep copy of the network. Solvers and agents clone before
// applying modifications so the session diff log can always be replayed
// against the pristine case.
func (n *Network) Clone() *Network {
	cloneCount.Add(1)
	c := &Network{Name: n.Name, BaseMVA: n.BaseMVA}
	c.Buses = append([]Bus(nil), n.Buses...)
	c.Loads = append([]Load(nil), n.Loads...)
	c.Gens = append([]Generator(nil), n.Gens...)
	c.Branches = append([]Branch(nil), n.Branches...)
	return c
}

// NumBuses returns the bus count.
func (n *Network) NumBuses() int { return len(n.Buses) }

// NumLines returns the count of in-service or out-of-service plain AC lines.
func (n *Network) NumLines() int {
	c := 0
	for _, b := range n.Branches {
		if !b.IsTransformer {
			c++
		}
	}
	return c
}

// NumTransformers returns the transformer branch count.
func (n *Network) NumTransformers() int {
	return len(n.Branches) - n.NumLines()
}

// SlackBus returns the internal index of the slack bus, or -1 if absent.
func (n *Network) SlackBus() int {
	for i, b := range n.Buses {
		if b.Type == Slack {
			return i
		}
	}
	return -1
}

// BusByID maps an external bus number to its internal index, or -1.
func (n *Network) BusByID(id int) int {
	for i, b := range n.Buses {
		if b.ID == id {
			return i
		}
	}
	return -1
}

// TotalLoad sums in-service demand in MW and MVAr.
func (n *Network) TotalLoad() (p, q float64) {
	for _, l := range n.Loads {
		if l.InService {
			p += l.P
			q += l.Q
		}
	}
	return p, q
}

// TotalGenCapacity sums PMax over in-service generators, in MW.
func (n *Network) TotalGenCapacity() float64 {
	var c float64
	for _, g := range n.Gens {
		if g.InService {
			c += g.PMax
		}
	}
	return c
}

// BusLoad returns aggregate in-service demand at internal bus index i, in
// MW and MVAr.
func (n *Network) BusLoad(i int) (p, q float64) {
	for _, l := range n.Loads {
		if l.InService && l.Bus == i {
			p += l.P
			q += l.Q
		}
	}
	return p, q
}

// GensAtBus returns the indices of in-service generators at bus i.
func (n *Network) GensAtBus(i int) []int {
	var out []int
	for g, gen := range n.Gens {
		if gen.InService && gen.Bus == i {
			out = append(out, g)
		}
	}
	return out
}

// InServiceBranches returns the indices of energized branches.
func (n *Network) InServiceBranches() []int {
	var out []int
	for i, b := range n.Branches {
		if b.InService {
			out = append(out, i)
		}
	}
	return out
}

// ConnectedComponents labels buses by connected component considering only
// in-service branches. It returns the component id per bus and the number
// of components.
func (n *Network) ConnectedComponents() (comp []int, count int) {
	nb := len(n.Buses)
	comp = make([]int, nb)
	for i := range comp {
		comp[i] = -1
	}
	adj := make([][]int, nb)
	for _, b := range n.Branches {
		if !b.InService {
			continue
		}
		adj[b.From] = append(adj[b.From], b.To)
		adj[b.To] = append(adj[b.To], b.From)
	}
	var stack []int
	for s := 0; s < nb; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if comp[w] == -1 {
					comp[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether all buses belong to one energized island.
func (n *Network) IsConnected() bool {
	_, c := n.ConnectedComponents()
	return c <= 1
}

// Validate checks structural and numerical consistency of the case. It is
// the data-integrity gate the paper's agents run before any solve.
func (n *Network) Validate() error {
	if n.BaseMVA <= 0 {
		return fmt.Errorf("model: %s: BaseMVA must be positive, got %v", n.Name, n.BaseMVA)
	}
	if len(n.Buses) == 0 {
		return fmt.Errorf("model: %s: no buses", n.Name)
	}
	slack := 0
	seen := make(map[int]bool, len(n.Buses))
	for i, b := range n.Buses {
		if seen[b.ID] {
			return fmt.Errorf("model: %s: duplicate bus ID %d", n.Name, b.ID)
		}
		seen[b.ID] = true
		if b.Type == Slack {
			slack++
		}
		if b.VMin <= 0 || b.VMax < b.VMin {
			return fmt.Errorf("model: %s: bus %d has invalid voltage band [%v, %v]", n.Name, b.ID, b.VMin, b.VMax)
		}
		if b.Vm <= 0 {
			return fmt.Errorf("model: %s: bus %d has non-positive initial Vm %v", n.Name, b.ID, b.Vm)
		}
		_ = i
	}
	if slack != 1 {
		return fmt.Errorf("model: %s: need exactly one slack bus, got %d", n.Name, slack)
	}
	for i, l := range n.Loads {
		if l.Bus < 0 || l.Bus >= len(n.Buses) {
			return fmt.Errorf("model: %s: load %d references bus index %d out of range", n.Name, i, l.Bus)
		}
	}
	for i, g := range n.Gens {
		if g.Bus < 0 || g.Bus >= len(n.Buses) {
			return fmt.Errorf("model: %s: generator %d references bus index %d out of range", n.Name, i, g.Bus)
		}
		if g.PMax < g.PMin {
			return fmt.Errorf("model: %s: generator %d has PMax %v < PMin %v", n.Name, i, g.PMax, g.PMin)
		}
		if g.QMax < g.QMin {
			return fmt.Errorf("model: %s: generator %d has QMax %v < QMin %v", n.Name, i, g.QMax, g.QMin)
		}
	}
	for i, b := range n.Branches {
		if b.From < 0 || b.From >= len(n.Buses) || b.To < 0 || b.To >= len(n.Buses) {
			return fmt.Errorf("model: %s: branch %d endpoint out of range", n.Name, i)
		}
		if b.From == b.To {
			return fmt.Errorf("model: %s: branch %d is a self loop at bus index %d", n.Name, i, b.From)
		}
		if b.X == 0 && b.R == 0 {
			return fmt.Errorf("model: %s: branch %d has zero impedance", n.Name, i)
		}
		if math.IsNaN(b.R) || math.IsNaN(b.X) || math.IsNaN(b.B) {
			return fmt.Errorf("model: %s: branch %d has NaN parameters", n.Name, i)
		}
	}
	if !n.IsConnected() {
		return fmt.Errorf("model: %s: network is not a single connected island", n.Name)
	}
	return nil
}

// Summary describes the case in the shape of the paper's Table 2 row.
type Summary struct {
	Name         string `json:"case"`
	Buses        int    `json:"bus"`
	Gens         int    `json:"gen"`
	Loads        int    `json:"load"`
	ACLines      int    `json:"ac_line"`
	Transformers int    `json:"transformers"`
}

// Summarize returns component counts for reporting.
func (n *Network) Summarize() Summary {
	return Summary{
		Name:         n.Name,
		Buses:        len(n.Buses),
		Gens:         len(n.Gens),
		Loads:        len(n.Loads),
		ACLines:      n.NumLines(),
		Transformers: n.NumTransformers(),
	}
}
