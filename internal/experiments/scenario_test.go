package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestScenarioBench(t *testing.T) {
	rows, err := Scenario(context.Background(), Config{Cases: []string{"case30", "case57"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Seeds <= 0 {
			t.Fatalf("%s: no seeds studied", r.Case)
		}
		if r.Screened+r.Stable+r.Islanded+r.Collapsed > r.Seeds {
			t.Fatalf("%s: outcome counts exceed seeds: %+v", r.Case, r)
		}
		if r.EpisodeSteps != 24 {
			t.Fatalf("%s: %d episode steps converged", r.Case, r.EpisodeSteps)
		}
		if r.MCSamples != scenarioMCSamples {
			t.Fatalf("%s: %d MC samples", r.Case, r.MCSamples)
		}
		if r.LOLPLo > r.LOLP || r.LOLP > r.LOLPHi {
			t.Fatalf("%s: malformed LOLP interval %+v", r.Case, r)
		}
	}
	var b strings.Builder
	FormatScenario(&b, rows)
	if !strings.Contains(b.String(), "case57") {
		t.Fatalf("formatted table:\n%s", b.String())
	}
}
