package experiments

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"time"

	"gridmind/internal/contingency"
	"gridmind/internal/engine"
	"gridmind/internal/fleet"
	"gridmind/internal/obs"
)

// This file is the distributed-fleet experiment surface: the scaling
// curve (sharded N-1 sweep wall-clock vs worker count, against the
// single-process reference) and the exact-equality comparison the CI
// fleet smoke job drives against real worker processes.

// FleetConfig configures FleetScaling.
type FleetConfig struct {
	// Cases to sweep; empty selects case300 and case3000.
	Cases []string
	// WorkerCounts are the fleet sizes to measure; empty selects 1, 2, 4.
	WorkerCounts []int
	// ShardsPerWorker is forwarded to the coordinator (0 = its default).
	ShardsPerWorker int
	// ArtifactDir, when set, mounts a persistent artifact store on every
	// worker, so only the first worker to touch a case compiles it.
	ArtifactDir string
}

func (c *FleetConfig) fill() {
	if len(c.Cases) == 0 {
		c.Cases = []string{"case300", "case3000"}
	}
	if len(c.WorkerCounts) == 0 {
		c.WorkerCounts = []int{1, 2, 4}
	}
}

// FleetPoint is one cell of the scaling curve.
type FleetPoint struct {
	Case     string `json:"case"`
	Workers  int    `json:"workers"`
	Outages  int    `json:"outages"`
	Screened int    `json:"screened"`
	// Seconds is the fleet sweep wall clock (dispatch + solve + merge).
	Seconds float64 `json:"seconds"`
	// SingleSeconds is the single-process engine-threaded sweep on the
	// same outage set — the denominator of Speedup.
	SingleSeconds float64 `json:"single_seconds"`
	Speedup       float64 `json:"speedup"`
	// Exact reports that the merged fleet result reproduced the
	// single-process result (structural fields exact, metrics ≤1e-9,
	// ranking identical).
	Exact bool `json:"exact"`
}

// FleetScaling measures sharded N-1 sweeps against in-process worker
// fleets of each configured size. Workers are real HTTP servers with
// fully independent engines — separate processes as far as the protocol,
// serialization and artifact paths are concerned; only the scheduler is
// shared, so on a single-core host the curve reads as protocol overhead,
// not as parallel speedup.
func FleetScaling(ctx context.Context, cfg FleetConfig) ([]FleetPoint, error) {
	cfg.fill()
	var pts []FleetPoint
	for _, cs := range cfg.Cases {
		single, branches, err := localReferenceSweep(cs)
		if err != nil {
			return nil, err
		}
		for _, workers := range cfg.WorkerCounts {
			var store *engine.Store
			if cfg.ArtifactDir != "" {
				if store, err = engine.NewStore(cfg.ArtifactDir); err != nil {
					return nil, err
				}
			}
			srvs := make([]*httptest.Server, workers)
			urls := make([]string, workers)
			for i := range srvs {
				w := fleet.NewWorker(fmt.Sprintf("w%d", i), engine.New(), store, obs.NewRegistry())
				srvs[i] = httptest.NewServer(w.Handler())
				urls[i] = srvs[i].URL
			}
			coord, err := fleet.NewCoordinator(fleet.Config{
				Workers:         urls,
				ShardsPerWorker: cfg.ShardsPerWorker,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			rs, err := coord.SweepN1(ctx, fmt.Sprintf("scaling-%s-%d", cs, workers), cs, branches, fleet.SweepOptions{DCScreen: true})
			elapsed := time.Since(start).Seconds()
			for _, s := range srvs {
				s.Close()
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: fleet sweep %s x%d: %w", cs, workers, err)
			}
			pts = append(pts, FleetPoint{
				Case:          cs,
				Workers:       workers,
				Outages:       len(rs.Outages),
				Screened:      rs.Screened,
				Seconds:       elapsed,
				SingleSeconds: single.seconds,
				Speedup:       single.seconds / elapsed,
				Exact:         resultSetsExact(single.rs, rs) == nil,
			})
		}
	}
	return pts, nil
}

// FleetCompareResult is FleetCompare's verdict.
type FleetCompareResult struct {
	Case     string  `json:"case"`
	Workers  int     `json:"workers"`
	Outages  int     `json:"outages"`
	Screened int     `json:"screened"`
	Seconds  float64 `json:"seconds"`
}

// FleetCompare runs a sharded N-1 sweep against EXTERNAL worker URLs
// (real processes, typically `gridmind-server -worker`) and pins the
// merged result to the single-process reference: any structural
// difference, metric drift past 1e-9 or ranking divergence is an error.
// The CI fleet smoke job is its caller — including the run where one
// worker is configured to die mid-sweep.
func FleetCompare(ctx context.Context, workers []string, caseName string) (*FleetCompareResult, error) {
	single, branches, err := localReferenceSweep(caseName)
	if err != nil {
		return nil, err
	}
	coord, err := fleet.NewCoordinator(fleet.Config{
		Workers:      workers,
		RetryBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rs, err := coord.SweepN1(ctx, "fleet-compare-"+caseName, caseName, branches, fleet.SweepOptions{DCScreen: true})
	if err != nil {
		return nil, err
	}
	if err := resultSetsExact(single.rs, rs); err != nil {
		return nil, fmt.Errorf("experiments: fleet result diverges from single-process sweep: %w", err)
	}
	return &FleetCompareResult{
		Case:     caseName,
		Workers:  len(workers),
		Outages:  len(rs.Outages),
		Screened: rs.Screened,
		Seconds:  time.Since(start).Seconds(),
	}, nil
}

// singleSweep carries the single-process reference and its wall clock.
type singleSweep struct {
	rs      *contingency.ResultSet
	seconds float64
}

// localReferenceSweep runs the engine-threaded single-process N-1 sweep —
// the exact configuration a gridmind-server session uses — and returns it
// with the global outage enumeration the coordinator shards.
func localReferenceSweep(caseName string) (*singleSweep, []int, error) {
	eng := engine.New()
	n, err := eng.Pristine(caseName)
	if err != nil {
		return nil, nil, err
	}
	base, err := eng.BasePF(caseName, n)
	if err != nil {
		return nil, nil, err
	}
	a := eng.Artifacts(n)
	opts := contingency.Options{
		DCScreen: true,
		BaseYbus: a.Ybus(),
		Topology: a.Topology(),
		Reorder:  a.Ordering(),
		Pool:     eng.SweepPool(caseName),
		Metrics:  eng.Metrics(),
	}
	if m, err := a.PTDF(); err == nil {
		opts.PTDF = m
	}
	start := time.Now()
	rs, err := contingency.Analyze(n, base, opts)
	if err != nil {
		return nil, nil, err
	}
	return &singleSweep{rs: rs, seconds: time.Since(start).Seconds()}, n.InServiceBranches(), nil
}

// resultSetsExact pins two sweeps: structural fields exact, float metrics
// within 1e-9, severity ranking identical. nil means they match.
func resultSetsExact(want, got *contingency.ResultSet) error {
	if want.CaseName != got.CaseName || len(want.Outages) != len(got.Outages) || want.Screened != got.Screened {
		return fmt.Errorf("shape differs: case %q/%q, %d/%d outages, %d/%d screened",
			want.CaseName, got.CaseName, len(want.Outages), len(got.Outages), want.Screened, got.Screened)
	}
	if math.Abs(want.BaseMaxLoadingPct-got.BaseMaxLoadingPct) > 1e-9 ||
		math.Abs(want.BaseMinVoltagePU-got.BaseMinVoltagePU) > 1e-9 {
		return fmt.Errorf("base-case metrics differ")
	}
	for k := range want.Outages {
		w, g := &want.Outages[k], &got.Outages[k]
		if w.Branch != g.Branch || w.Converged != g.Converged || w.Islanded != g.Islanded ||
			w.Algorithm != g.Algorithm || len(w.Overloads) != len(g.Overloads) || len(w.VoltViols) != len(g.VoltViols) {
			return fmt.Errorf("outage %d: structural fields differ", k)
		}
		if math.Abs(w.MaxLoadingPct-g.MaxLoadingPct) > 1e-9 ||
			math.Abs(w.MinVoltagePU-g.MinVoltagePU) > 1e-9 ||
			math.Abs(w.LoadShedMW-g.LoadShedMW) > 1e-9 ||
			math.Abs(w.Severity-g.Severity) > 1e-9 {
			return fmt.Errorf("outage %d: metrics differ beyond 1e-9", k)
		}
	}
	wr, gr := want.Rank(contingency.Composite), got.Rank(contingency.Composite)
	for i := range wr {
		if wr[i] != gr[i] {
			return fmt.Errorf("ranking diverges at position %d", i)
		}
	}
	return nil
}
