// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Figure 3's three panels (success rate by model,
// execution-time distribution, execution time versus case complexity) and
// Table 1 (contingency-analysis agent performance), plus the Table 2 case
// inventory. The same runners back cmd/gridmind-bench and the root
// bench_test.go targets; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"gridmind/internal/agents"
	"gridmind/internal/cases"
	"gridmind/internal/llm"
	"gridmind/internal/metrics"
	"gridmind/internal/model"
	"gridmind/internal/simclock"
)

// Config scopes an experiment run.
type Config struct {
	// Models to evaluate; nil selects the paper's six.
	Models []string
	// Runs per (model, case) cell; zero selects 5 (the paper's count).
	Runs int
	// Case is the network for fixed-case experiments; "" selects case118.
	Case string
	// Cases is the sweep for the scaling panel; nil selects all five.
	Cases []string
}

func (c *Config) fill() {
	if len(c.Models) == 0 {
		c.Models = llm.ModelNames()
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Case == "" {
		c.Case = "case118"
	}
	if len(c.Cases) == 0 {
		c.Cases = cases.Names()
	}
}

// runOne executes a single query through a fresh coordinator with a
// simulated backend, returning the turn outcome and simulated latency.
func runOne(ctx context.Context, modelName, query string, salt int64) (*agents.Exchange, time.Duration, *metrics.Recorder, error) {
	profile, ok := llm.ProfileByName(modelName)
	if !ok {
		return nil, 0, nil, fmt.Errorf("experiments: unknown model %q", modelName)
	}
	clock := simclock.NewSim(time.Date(2025, 9, 2, 0, 0, 0, 0, time.UTC))
	rec := metrics.NewRecorder()
	coord := agents.NewCoordinator(agents.Config{
		Client:        llm.NewSim(profile),
		Clock:         clock,
		Recorder:      rec,
		AbsorbLatency: true,
		Salt:          salt,
	})
	start := clock.Now()
	ex, err := coord.Handle(ctx, query)
	return ex, clock.Elapsed(start), rec, err
}

// --- Figure 3 (left): success rate by model ---

// SuccessRow is one bar of Figure 3's left panel.
type SuccessRow struct {
	Model       string  `json:"model"`
	Runs        int     `json:"runs"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate_pct"`
}

// Figure3Success reproduces the left panel: ACOPF agent success rate on
// the fixed case across models. The paper reports 100% everywhere.
func Figure3Success(ctx context.Context, cfg Config) ([]SuccessRow, error) {
	cfg.fill()
	query := solveQuery(cfg.Case)
	var rows []SuccessRow
	for _, m := range cfg.Models {
		row := SuccessRow{Model: m, Runs: cfg.Runs}
		for r := 0; r < cfg.Runs; r++ {
			ex, _, _, err := runOne(ctx, m, query, int64(r))
			if err != nil {
				return nil, err
			}
			if ex.Success {
				row.Successes++
			}
		}
		row.SuccessRate = 100 * float64(row.Successes) / float64(cfg.Runs)
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Figure 3 (middle): execution time distribution ---

// DistRow is one box of the middle panel (seconds).
type DistRow struct {
	Model  string  `json:"model"`
	Min    float64 `json:"min_s"`
	Q1     float64 `json:"q1_s"`
	Median float64 `json:"median_s"`
	Q3     float64 `json:"q3_s"`
	Max    float64 `json:"max_s"`
	Mean   float64 `json:"mean_s"`
}

// Figure3Distribution reproduces the middle panel: the distribution of
// end-to-end execution time per model on the fixed case over Runs runs.
func Figure3Distribution(ctx context.Context, cfg Config) ([]DistRow, error) {
	cfg.fill()
	query := solveQuery(cfg.Case)
	var rows []DistRow
	for _, m := range cfg.Models {
		lats := make([]float64, 0, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			ex, lat, _, err := runOne(ctx, m, query, int64(1000+r))
			if err != nil {
				return nil, err
			}
			if !ex.Success {
				return nil, fmt.Errorf("experiments: %s run %d failed: %s", m, r, ex.Reply)
			}
			lats = append(lats, lat.Seconds())
		}
		sort.Float64s(lats)
		rows = append(rows, DistRow{
			Model:  m,
			Min:    lats[0],
			Q1:     quantileF(lats, 0.25),
			Median: quantileF(lats, 0.5),
			Q3:     quantileF(lats, 0.75),
			Max:    lats[len(lats)-1],
			Mean:   meanF(lats),
		})
	}
	return rows, nil
}

// --- Figure 3 (right): execution time vs case complexity ---

// ScalePoint is one (model, case) marker of the right panel.
type ScalePoint struct {
	Model   string  `json:"model"`
	Case    string  `json:"case"`
	CaseNum int     `json:"case_num"`
	MeanS   float64 `json:"mean_s"`
}

// Figure3Scaling reproduces the right panel: execution time against IEEE
// case number. The paper finds no strong trend (LLM latency dominates the
// solver's case-size dependence).
func Figure3Scaling(ctx context.Context, cfg Config) ([]ScalePoint, error) {
	cfg.fill()
	var pts []ScalePoint
	for _, m := range cfg.Models {
		for _, cs := range cfg.Cases {
			var sum float64
			for r := 0; r < cfg.Runs; r++ {
				ex, lat, _, err := runOne(ctx, m, solveQuery(cs), int64(2000+r))
				if err != nil {
					return nil, err
				}
				if !ex.Success {
					return nil, fmt.Errorf("experiments: %s on %s failed: %s", m, cs, ex.Reply)
				}
				sum += lat.Seconds()
			}
			pts = append(pts, ScalePoint{
				Model: m, Case: cs, CaseNum: caseNumber(cs), MeanS: sum / float64(cfg.Runs),
			})
		}
	}
	return pts, nil
}

// --- Table 1: CA agent performance ---

// Table1Row mirrors the paper's Table 1 columns.
type Table1Row struct {
	Model          string  `json:"model"`
	TimeSeconds    float64 `json:"time_s"`
	CriticalLines  []int   `json:"critical_lines_idx"`
	MaxOverloadPct float64 `json:"max_overload_pct"`
}

// Table1 reproduces the CA agent experiment: per model, identify the
// top-5 critical lines of the fixed case and the maximum overload
// percentage. The expected shape: five of six models agree exactly, the
// divergent profile (GPT-5 Mini's thermal-first ranking) differs in one
// line with a higher overload, and execution times span ~25-90 s with
// GPT-5 slowest.
func Table1(ctx context.Context, cfg Config) ([]Table1Row, error) {
	cfg.fill()
	query := fmt.Sprintf("Identify the top-5 most critical lines in %s contingency analysis", displayCase(cfg.Case))
	var rows []Table1Row
	for _, m := range cfg.Models {
		ex, lat, _, err := runOne(ctx, m, query, 42)
		if err != nil {
			return nil, err
		}
		if !ex.Success {
			return nil, fmt.Errorf("experiments: %s table1 failed: %s", m, ex.Reply)
		}
		row := Table1Row{Model: m, TimeSeconds: lat.Seconds()}
		// Pull the ranked lines from the final structured tool result of
		// the CA turn (the same data the narration cites).
		for _, turn := range ex.Turns {
			for _, step := range turn.Steps {
				res, ok := step.Result.(map[string]any)
				if !ok || step.Tool != "run_n1_contingency_analysis" {
					continue
				}
				if crit, ok := res["critical"].([]any); ok {
					row.CriticalLines = row.CriticalLines[:0]
					for _, c := range crit {
						cm := c.(map[string]any)
						row.CriticalLines = append(row.CriticalLines, int(cm["branch"].(float64)))
					}
				}
				if v, ok := res["max_overload_pct"].(float64); ok {
					row.MaxOverloadPct = v
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Table 2: case inventory ---

// Table2 returns the supported-case component counts.
func Table2() ([]model.Summary, error) {
	return cases.Summaries()
}

// --- helpers ---

func solveQuery(caseName string) string {
	return "Solve " + displayCase(caseName)
}

func displayCase(caseName string) string {
	return "IEEE " + strings.TrimPrefix(caseName, "case")
}

func caseNumber(caseName string) int {
	n := 0
	fmt.Sscanf(strings.TrimPrefix(caseName, "case"), "%d", &n)
	return n
}

func quantileF(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

func meanF(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
