package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"gridmind/internal/agents"
	"gridmind/internal/llm"
	"gridmind/internal/metrics"
	"gridmind/internal/simclock"
)

// ReliabilityRow aggregates one model's behaviour over a mixed workload —
// the paper's "instrumentation bench" that logs solver metrics plus LLM
// latency, token usage and occasional factual slips so reliability trends
// can be monitored (§1).
type ReliabilityRow struct {
	Model            string  `json:"model"`
	Sessions         int     `json:"sessions"`
	Queries          int     `json:"queries"`
	SuccessRate      float64 `json:"success_rate_pct"`
	FactualSlips     int     `json:"factual_slips_caught"`
	Recoveries       int     `json:"recoveries"`
	ValidationErrors int     `json:"validation_errors"`
	MeanLatencyS     float64 `json:"mean_latency_s"`
	TotalTokens      int     `json:"total_tokens"`
	ToolCalls        int     `json:"tool_calls"`
}

// workloadQueries builds a deterministic mixed session: a solve followed
// by a sampled sequence of what-ifs, status checks, reliability studies
// and sensitivity probes on valid buses of the chosen case.
func workloadQueries(rng *rand.Rand) []string {
	caseName := []string{"IEEE 14", "IEEE 30"}[rng.Intn(2)]
	loadBuses := map[string][]int{
		"IEEE 14": {3, 4, 9, 13, 14},
		"IEEE 30": {5, 7, 12, 21, 30},
	}[caseName]
	qs := []string{"Solve " + caseName}
	followUps := rng.Intn(3) + 3
	for i := 0; i < followUps; i++ {
		bus := loadBuses[rng.Intn(len(loadBuses))]
		switch rng.Intn(6) {
		case 0:
			qs = append(qs, fmt.Sprintf("Increase the load at bus %d to %d MW", bus, 20+rng.Intn(40)))
		case 1:
			qs = append(qs, fmt.Sprintf("Decrease the load at bus %d by %d MW", bus, 1+rng.Intn(5)))
		case 2:
			qs = append(qs, "What is the current network status?")
		case 3:
			qs = append(qs, fmt.Sprintf("What are the top %d most critical contingencies?", 3+rng.Intn(3)))
		case 4:
			qs = append(qs, "Run a load sensitivity analysis on the marginal prices")
		default:
			qs = append(qs, fmt.Sprintf("Analyze the outage of branch %d", rng.Intn(15)))
		}
	}
	return qs
}

// Reliability runs the mixed workload per model: cfg.Runs sessions each.
func Reliability(ctx context.Context, cfg Config) ([]ReliabilityRow, error) {
	cfg.fill()
	var rows []ReliabilityRow
	for _, m := range cfg.Models {
		profile, ok := llm.ProfileByName(m)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown model %q", m)
		}
		rec := metrics.NewRecorder()
		for s := 0; s < cfg.Runs; s++ {
			rng := rand.New(rand.NewSource(int64(7000 + s)))
			clock := simclock.NewSim(time.Date(2025, 9, 2, 0, 0, 0, 0, time.UTC))
			coord := agents.NewCoordinator(agents.Config{
				Client:        llm.NewSim(profile),
				Clock:         clock,
				Recorder:      rec,
				AbsorbLatency: true,
				Salt:          int64(s),
			})
			for _, q := range workloadQueries(rng) {
				if _, err := coord.Handle(ctx, q); err != nil {
					return nil, fmt.Errorf("experiments: %s session %d %q: %w", m, s, q, err)
				}
			}
		}
		all := rec.Rows()
		sum := metrics.Summarize(all)
		row := ReliabilityRow{
			Model:        m,
			Sessions:     cfg.Runs,
			Queries:      len(all),
			SuccessRate:  100 * sum.SuccessRate,
			FactualSlips: sum.FactualSlips,
			Recoveries:   sum.Recoveries,
			MeanLatencyS: sum.MeanLatency.Seconds(),
			TotalTokens:  sum.TotalTokens,
			ToolCalls:    sum.ToolCalls,
		}
		for _, r := range all {
			row.ValidationErrors += r.ValidationErrors
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatReliability renders the reliability-trend table.
func FormatReliability(w io.Writer, rows []ReliabilityRow) {
	fmt.Fprintln(w, "Reliability trends — mixed workload instrumentation")
	fmt.Fprintf(w, "%-18s %8s %8s %9s %6s %10s %9s %10s %10s\n",
		"Model", "Sessions", "Queries", "Success", "Slips", "Recoveries", "ValErrs", "MeanLat(s)", "Tokens")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %8d %8.1f%% %6d %10d %9d %10.1f %10d\n",
			r.Model, r.Sessions, r.Queries, r.SuccessRate, r.FactualSlips,
			r.Recoveries, r.ValidationErrors, r.MeanLatencyS, r.TotalTokens)
	}
}
