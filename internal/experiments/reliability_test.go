package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gridmind/internal/llm"
)

func TestReliabilityWorkload(t *testing.T) {
	cfg := Config{Models: []string{llm.ModelGPT5Nano}, Runs: 2}
	rows, err := Reliability(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows %d", len(rows))
	}
	r := rows[0]
	if r.Queries < 8 { // 2 sessions × (1 solve + ≥3 follow-ups)
		t.Fatalf("only %d queries executed", r.Queries)
	}
	// The architectural guarantee: mixed workloads still succeed at 100%
	// because every numeric flows through validated tools.
	if r.SuccessRate != 100 {
		t.Fatalf("success rate %.1f%%, want 100%%", r.SuccessRate)
	}
	if r.ToolCalls == 0 || r.TotalTokens == 0 {
		t.Fatalf("instrumentation lost: %+v", r)
	}
	if r.MeanLatencyS <= 0 {
		t.Fatal("latency not tracked")
	}
}

func TestReliabilitySlipsCaught(t *testing.T) {
	// GPT-5 Nano has the highest slip rate (5%); across enough
	// narrations at least one slip should be injected — and every one is
	// repaired by the audit layer while queries still succeed.
	cfg := Config{Models: []string{llm.ModelGPT5Nano}, Runs: 6}
	rows, err := Reliability(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.FactualSlips == 0 {
		t.Skip("no slips drawn in this seeded workload; acceptable but rare")
	}
	if r.SuccessRate != 100 {
		t.Fatalf("slips must not break success: %.1f%%", r.SuccessRate)
	}
}

func TestReliabilityDeterministic(t *testing.T) {
	cfg := Config{Models: []string{llm.ModelGPTO3}, Runs: 2}
	a, err := Reliability(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reliability(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Turn latency blends simulated LLM time with REAL solver wall time
	// (by design), so only the behavioural fields are bitwise stable.
	a[0].MeanLatencyS, b[0].MeanLatencyS = 0, 0
	if a[0] != b[0] {
		t.Fatalf("reliability behaviour differs across identical runs:\n%+v\n%+v", a[0], b[0])
	}
}

func TestFormatReliability(t *testing.T) {
	var buf bytes.Buffer
	FormatReliability(&buf, []ReliabilityRow{{
		Model: "m", Sessions: 2, Queries: 10, SuccessRate: 100,
		FactualSlips: 1, MeanLatencyS: 12.5, TotalTokens: 5000,
	}})
	out := buf.String()
	if !strings.Contains(out, "100.0%") || !strings.Contains(out, "12.5") {
		t.Fatalf("format: %s", out)
	}
}
