package experiments

import (
	"context"
	"fmt"
	"io"

	"gridmind/internal/cases"
	"gridmind/internal/engine"
	"gridmind/internal/scenario"
)

// ScenarioRow aggregates the scenario engine's three studies on one case:
// the full N-k cascade sweep, a 24-step diurnal episode, and a seeded
// Monte Carlo reliability estimate. One row per case, all three studies
// sharing the case's compiled artifacts through the engine.
type ScenarioRow struct {
	Case string `json:"case"`

	// Cascade sweep.
	Seeds         int     `json:"seeds"`
	Screened      int     `json:"screened"`
	Stable        int     `json:"stable"`
	Cascaded      int     `json:"cascaded"`
	Islanded      int     `json:"islanded"`
	Collapsed     int     `json:"collapsed"`
	WorstSeed     int     `json:"worst_seed"`
	WorstSeverity float64 `json:"worst_severity"`
	MaxShedMW     float64 `json:"max_shed_mw"`

	// Episode.
	EpisodeSteps    int     `json:"episode_steps"`
	EpisodeMargin   float64 `json:"episode_min_margin_pct"`
	EpisodeMinVolt  float64 `json:"episode_min_voltage_pu"`
	EpisodeWorstIdx int     `json:"episode_worst_step"`

	// Monte Carlo reliability (95% Wilson intervals).
	MCSamples  int     `json:"mc_samples"`
	LOLP       float64 `json:"lolp"`
	LOLPLo     float64 `json:"lolp_lo"`
	LOLPHi     float64 `json:"lolp_hi"`
	OverloadP  float64 `json:"overload_p"`
	MeanShedMW float64 `json:"mc_mean_shed_mw"`
}

// scenarioMCSamples keeps the Monte Carlo leg cheap enough for the bench
// while leaving the Wilson intervals meaningful.
const scenarioMCSamples = 200

// Scenario runs the scenario bench on cfg.Cases (default: the five IEEE
// systems): for each case one cascade sweep with the DC screen, one
// 24-step diurnal episode riding the case's load and solar profiles, and
// one fixed-seed Monte Carlo reliability run — all on one shared engine,
// so each case compiles its structure exactly once across the three
// studies.
func Scenario(ctx context.Context, cfg Config) ([]ScenarioRow, error) {
	cfg.fill()
	eng := engine.New()
	var rows []ScenarioRow
	for _, name := range cfg.Cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := eng.Pristine(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		// State keys are per case: BasePF memoizes by key, and the pool
		// segregates contexts per network under one key.
		stateKey := "scenario/" + name
		base, err := eng.BasePF(stateKey, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s base: %w", name, err)
		}
		art := eng.Artifacts(n)
		opts := scenario.Options{
			BaseYbus: art.Ybus(),
			Topology: art.Topology(),
			Reorder:  art.Ordering(),
			Pool:     eng.ScenarioPool(stateKey),
			DCScreen: true,
		}
		if m, err := art.PTDF(); err == nil {
			opts.PTDF = m
		}

		sw, err := scenario.Sweep(n, base, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sweep: %w", name, err)
		}

		const steps = 24
		load := cases.LoadCurve(steps, 11)
		solar := cases.SolarCurve(steps, 12)
		g := len(n.Gens) - 1
		capMW := n.Gens[g].PMax / 2
		eps := make([]scenario.EpisodeStep, steps)
		for i := range eps {
			eps[i] = scenario.EpisodeStep{
				LoadScale: load[i],
				GenP:      map[int]float64{g: solar[i] * capMW},
			}
		}
		epOpts := opts
		epOpts.DCScreen = false
		ep, err := scenario.Episode(n, base, eps, epOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s episode: %w", name, err)
		}

		mc, err := scenario.RunMC(n, base, scenario.MCOptions{
			Samples:          scenarioMCSamples,
			Seed:             2026,
			BranchOutageProb: 0.01,
			GenOutageProb:    0.005,
			LoadSigma:        0.03,
			Cascade:          epOpts,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s monte carlo: %w", name, err)
		}

		rows = append(rows, ScenarioRow{
			Case:            name,
			Seeds:           sw.Seeds,
			Screened:        sw.Screened,
			Stable:          sw.Stable,
			Cascaded:        sw.Cascaded,
			Islanded:        sw.Islanded,
			Collapsed:       sw.Collapsed,
			WorstSeed:       sw.WorstSeed,
			WorstSeverity:   sw.WorstSeverity,
			MaxShedMW:       sw.MaxShedMW,
			EpisodeSteps:    ep.Converged,
			EpisodeMargin:   ep.MinMarginPct,
			EpisodeMinVolt:  ep.MinVoltagePU,
			EpisodeWorstIdx: ep.WorstStep,
			MCSamples:       mc.Samples,
			LOLP:            mc.LossOfLoad.P,
			LOLPLo:          mc.LossOfLoad.Lo,
			LOLPHi:          mc.LossOfLoad.Hi,
			OverloadP:       mc.Overload.P,
			MeanShedMW:      mc.MeanShedMW,
		})
	}
	return rows, nil
}

// FormatScenario renders the scenario bench table.
func FormatScenario(w io.Writer, rows []ScenarioRow) {
	fmt.Fprintln(w, "Scenario engine — cascade sweep / diurnal episode / Monte Carlo reliability")
	fmt.Fprintf(w, "%-9s %6s %6s %6s %6s %6s %9s %10s %9s %8s %18s %9s\n",
		"Case", "Seeds", "Scrn", "Stable", "Casc", "Isl", "WorstSev", "MaxShedMW", "EpMargin", "EpVmin", "LOLP[95%CI]", "EENS(MW)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %6d %6d %6d %6d %6d %9.1f %10.1f %8.1f%% %8.4f %6.3f[%.3f,%.3f] %9.2f\n",
			r.Case, r.Seeds, r.Screened, r.Stable, r.Cascaded, r.Islanded,
			r.WorstSeverity, r.MaxShedMW, r.EpisodeMargin, r.EpisodeMinVolt,
			r.LOLP, r.LOLPLo, r.LOLPHi, r.MeanShedMW)
	}
}
