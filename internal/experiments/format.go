package experiments

import (
	"fmt"
	"io"
	"strings"

	"gridmind/internal/model"
)

// FormatSuccess renders Figure 3 (left) as a text table.
func FormatSuccess(w io.Writer, rows []SuccessRow) {
	fmt.Fprintln(w, "Figure 3 (left) — ACOPF agent success rate by model")
	fmt.Fprintf(w, "%-18s %8s %10s\n", "Model", "Runs", "Success")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %9.1f%%\n", r.Model, r.Runs, r.SuccessRate)
	}
}

// FormatDistribution renders Figure 3 (middle) as box-plot statistics.
func FormatDistribution(w io.Writer, rows []DistRow) {
	fmt.Fprintln(w, "Figure 3 (middle) — execution time distribution by model (seconds)")
	fmt.Fprintf(w, "%-18s %8s %8s %8s %8s %8s %8s\n", "Model", "min", "q1", "median", "q3", "max", "mean")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			r.Model, r.Min, r.Q1, r.Median, r.Q3, r.Max, r.Mean)
	}
}

// FormatScaling renders Figure 3 (right) as a model × case matrix.
func FormatScaling(w io.Writer, pts []ScalePoint) {
	fmt.Fprintln(w, "Figure 3 (right) — execution time vs case complexity (seconds, mean)")
	// Collect axes preserving first-seen order.
	var models []string
	var casesSeen []string
	cell := map[string]map[string]float64{}
	for _, p := range pts {
		if _, ok := cell[p.Model]; !ok {
			cell[p.Model] = map[string]float64{}
			models = append(models, p.Model)
		}
		if _, ok := cell[p.Model][p.Case]; !ok {
			found := false
			for _, c := range casesSeen {
				if c == p.Case {
					found = true
					break
				}
			}
			if !found {
				casesSeen = append(casesSeen, p.Case)
			}
		}
		cell[p.Model][p.Case] = p.MeanS
	}
	fmt.Fprintf(w, "%-18s", "Model")
	for _, c := range casesSeen {
		fmt.Fprintf(w, " %9s", strings.TrimPrefix(c, "case"))
	}
	fmt.Fprintln(w)
	for _, m := range models {
		fmt.Fprintf(w, "%-18s", m)
		for _, c := range casesSeen {
			fmt.Fprintf(w, " %9.1f", cell[m][c])
		}
		fmt.Fprintln(w)
	}
}

// FormatTable1 renders Table 1 in the paper's column layout.
func FormatTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — CA Agent Performance (case118)")
	fmt.Fprintf(w, "%-18s %9s  %-24s %14s\n", "Model", "Time (s)", "Critical Lines (idx)", "Max Overload %")
	for _, r := range rows {
		idx := make([]string, len(r.CriticalLines))
		for i, v := range r.CriticalLines {
			idx[i] = fmt.Sprint(v)
		}
		fmt.Fprintf(w, "%-18s %9.1f  %-24s %14.0f\n",
			r.Model, r.TimeSeconds, strings.Join(idx, ", "), r.MaxOverloadPct)
	}
}

// FormatTable2 renders the case inventory in the paper's Table 2 layout.
func FormatTable2(w io.Writer, rows []model.Summary) {
	fmt.Fprintln(w, "Table 2 — Test cases")
	fmt.Fprintf(w, "%-10s %6s %6s %6s %9s %13s\n", "Case", "Bus", "Gen", "Load", "AC line", "Transformers")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %6d %6d %9d %13d\n",
			r.Name, r.Buses, r.Gens, r.Loads, r.ACLines, r.Transformers)
	}
}

// FormatFleet renders the fleet scaling curve.
func FormatFleet(w io.Writer, pts []FleetPoint) {
	fmt.Fprintln(w, "Fleet scaling — sharded N-1 sweep wall clock vs worker count")
	fmt.Fprintf(w, "%-10s %8s %8s %9s %10s %10s %8s %6s\n",
		"Case", "Workers", "Outages", "Screened", "Fleet s", "Single s", "Speedup", "Exact")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %8d %8d %9d %10.3f %10.3f %7.2fx %6v\n",
			p.Case, p.Workers, p.Outages, p.Screened, p.Seconds, p.SingleSeconds, p.Speedup, p.Exact)
	}
}
