package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gridmind/internal/llm"
)

// Small configurations keep the unit tests quick; cmd/gridmind-bench runs
// the full paper-scale configurations.
func smallCfg() Config {
	return Config{
		Models: []string{llm.ModelGPTO3, llm.ModelGPT5Mini},
		Runs:   2,
		Case:   "case30",
		Cases:  []string{"case14", "case30"},
	}
}

func TestFigure3SuccessAllPass(t *testing.T) {
	rows, err := Figure3Success(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.SuccessRate != 100 {
			t.Errorf("%s success %.1f%%, paper reports 100%%", r.Model, r.SuccessRate)
		}
	}
}

func TestFigure3DistributionShape(t *testing.T) {
	rows, err := Figure3Distribution(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.Min <= r.Q1 && r.Q1 <= r.Median && r.Median <= r.Q3 && r.Q3 <= r.Max) {
			t.Errorf("%s: quartiles not ordered: %+v", r.Model, r)
		}
		if r.Min <= 0 {
			t.Errorf("%s: non-positive latency", r.Model)
		}
	}
}

func TestFigure3ScalingProducesAllCells(t *testing.T) {
	cfg := smallCfg()
	cfg.Runs = 1
	pts, err := Figure3Scaling(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(cfg.Models)*len(cfg.Cases) {
		t.Fatalf("points %d, want %d", len(pts), len(cfg.Models)*len(cfg.Cases))
	}
	for _, p := range pts {
		if p.MeanS <= 0 {
			t.Errorf("cell %s/%s has non-positive time", p.Model, p.Case)
		}
	}
}

func TestTable1ShapeOnCase118(t *testing.T) {
	if testing.Short() {
		t.Skip("full case118 CA sweep in short mode")
	}
	cfg := Config{Runs: 1, Case: "case118"} // all six models
	rows, err := Table1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows %d, want 6", len(rows))
	}
	// Group by identical critical-line sets: the paper's shape is five
	// agreeing models and one divergent (GPT-5 Mini).
	key := func(r Table1Row) string {
		var b strings.Builder
		for _, v := range r.CriticalLines {
			b.WriteString(string(rune(v)) + ",")
		}
		return b.String()
	}
	groups := map[string][]string{}
	for _, r := range rows {
		groups[key(r)] = append(groups[key(r)], r.Model)
		if len(r.CriticalLines) != 5 {
			t.Errorf("%s returned %d lines, want 5", r.Model, len(r.CriticalLines))
		}
		if r.MaxOverloadPct <= 100 {
			t.Errorf("%s max overload %.0f%%, expected >100%%", r.Model, r.MaxOverloadPct)
		}
		if r.TimeSeconds < 5 || r.TimeSeconds > 300 {
			t.Errorf("%s time %.1fs outside paper scale", r.Model, r.TimeSeconds)
		}
	}
	if len(groups) < 1 || len(groups) > 2 {
		t.Errorf("expected 1-2 distinct critical sets, got %d", len(groups))
	}
	// The majority group has the five composite-strategy models.
	var majority int
	for _, members := range groups {
		if len(members) > majority {
			majority = len(members)
		}
	}
	if majority < 5 {
		t.Errorf("majority group has %d models, want >=5", majority)
	}
	// GPT-5 must be the slowest (paper: 92.7 s).
	var gpt5, fastest float64 = 0, 1e18
	for _, r := range rows {
		if r.Model == llm.ModelGPT5 {
			gpt5 = r.TimeSeconds
		}
		if r.TimeSeconds < fastest {
			fastest = r.TimeSeconds
		}
	}
	if gpt5 < 2*fastest {
		t.Errorf("GPT-5 (%.1fs) should be much slower than the fastest (%.1fs)", gpt5, fastest)
	}
}

func TestTable2MatchesSupportedCases(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[3].Name != "case118" || rows[3].Buses != 118 || rows[3].Gens != 54 {
		t.Fatalf("case118 row %+v", rows[3])
	}
}

func TestFormatters(t *testing.T) {
	var buf bytes.Buffer
	FormatSuccess(&buf, []SuccessRow{{Model: "m", Runs: 5, Successes: 5, SuccessRate: 100}})
	if !strings.Contains(buf.String(), "100.0%") {
		t.Fatalf("success table: %s", buf.String())
	}
	buf.Reset()
	FormatDistribution(&buf, []DistRow{{Model: "m", Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5, Mean: 3}})
	if !strings.Contains(buf.String(), "median") {
		t.Fatal("distribution header missing")
	}
	buf.Reset()
	FormatScaling(&buf, []ScalePoint{{Model: "m", Case: "case14", CaseNum: 14, MeanS: 9.9}})
	if !strings.Contains(buf.String(), "9.9") {
		t.Fatal("scaling cell missing")
	}
	buf.Reset()
	FormatTable1(&buf, []Table1Row{{Model: "m", TimeSeconds: 92.7, CriticalLines: []int{6, 7, 0}, MaxOverloadPct: 137}})
	out := buf.String()
	if !strings.Contains(out, "92.7") || !strings.Contains(out, "6, 7, 0") || !strings.Contains(out, "137") {
		t.Fatalf("table1: %s", out)
	}
	buf.Reset()
	rows, _ := Table2()
	FormatTable2(&buf, rows)
	if !strings.Contains(buf.String(), "case300") {
		t.Fatal("table2 missing case300")
	}
}
