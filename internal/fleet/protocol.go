// Package fleet distributes contingency sweeps across worker processes.
//
// A Coordinator splits the outage list of an N-1 (or the candidate-pair
// list of an N-2) sweep into deterministic contiguous shards and posts
// them to workers over a small HTTP/JSON protocol; each Worker runs its
// shard with the engine's full artifact-threading fast path (shared Ybus,
// prebuilt topology, PTDF, ordering cache, pooled Newton contexts —
// warmed from the persistent artifact store when one is mounted) and
// returns the partial ResultSet. The coordinator merges partials at
// precomputed offsets, so the merged sweep is bit-identical to the
// single-process sweep regardless of worker count, shard completion
// order, retries or mid-sweep worker death. See README.md for the wire
// contract.
package fleet

import (
	"fmt"

	"gridmind/internal/contingency"
)

// ProtocolVersion is the shard wire-format version. A worker rejects any
// other version with 400, and the coordinator rejects mismatched
// responses, so a mixed-version fleet fails loudly instead of merging
// incompatible partials. Bump it whenever ShardRequest, ShardResponse or
// SweepOptions change shape or meaning.
const ProtocolVersion = 1

// Sweep kinds carried by ShardRequest.Kind.
const (
	KindN1 = "n1"
	KindN2 = "n2"
)

// SweepOptions is the wire subset of contingency.Options: only the value
// knobs travel. The artifact pointers (Ybus, topology, PTDF, ordering
// cache, sweep pool) are process-local by design — every worker supplies
// its own from its engine, warmed from the shared artifact store when
// available. Zero values select the same defaults as contingency.Options.
type SweepOptions struct {
	VoltLow         float64 `json:"volt_low,omitempty"`
	VoltHigh        float64 `json:"volt_high,omitempty"`
	OverloadPct     float64 `json:"overload_pct,omitempty"`
	ScreenThreshold float64 `json:"screen_threshold,omitempty"`
	DCScreen        bool    `json:"dc_screen,omitempty"`
	NoWarmStart     bool    `json:"no_warm_start,omitempty"`
}

// apply copies the wire knobs onto a local Options value.
func (o SweepOptions) apply(dst *contingency.Options) {
	dst.VoltLow = o.VoltLow
	dst.VoltHigh = o.VoltHigh
	dst.OverloadPct = o.OverloadPct
	dst.ScreenThreshold = o.ScreenThreshold
	dst.DCScreen = o.DCScreen
	dst.NoWarmStart = o.NoWarmStart
}

// ShardRequest is one unit of sweep work, POSTed to a worker's /shard
// endpoint. Exactly one of Branches (KindN1) or Pairs (KindN2) is set.
// The same request may be posted more than once — after a timeout the
// coordinator cannot tell a dead worker from a slow one — so workers
// treat Key() as an idempotency key and replay the memoized response.
type ShardRequest struct {
	Version int    `json:"version"`
	SweepID string `json:"sweep_id"`
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Case    string `json:"case"`
	Kind    string `json:"kind"`

	// Branches is the N-1 outage subset of this shard (branch indices,
	// coordinator-enumerated so every worker sees the identical global
	// ordering split at the same offsets).
	Branches []int `json:"branches,omitempty"`
	// Pairs is the N-2 candidate subset of this shard.
	Pairs []contingency.N2Pair `json:"pairs,omitempty"`

	Opts SweepOptions `json:"opts"`
}

// Key is the shard's idempotency key: retries of the same shard of the
// same sweep carry the same key and must produce the same response.
func (r *ShardRequest) Key() string {
	return fmt.Sprintf("%s/%d", r.SweepID, r.Shard)
}

// validate rejects malformed requests before any engine work.
func (r *ShardRequest) validate() error {
	if r.Version != ProtocolVersion {
		return fmt.Errorf("fleet: protocol version %d, worker speaks %d", r.Version, ProtocolVersion)
	}
	if r.SweepID == "" || r.Case == "" {
		return fmt.Errorf("fleet: shard request needs sweep_id and case")
	}
	switch r.Kind {
	case KindN1:
		if len(r.Branches) == 0 || len(r.Pairs) != 0 {
			return fmt.Errorf("fleet: %s shard must carry branches only", KindN1)
		}
	case KindN2:
		if len(r.Pairs) == 0 || len(r.Branches) != 0 {
			return fmt.Errorf("fleet: %s shard must carry pairs only", KindN2)
		}
	default:
		return fmt.Errorf("fleet: unknown sweep kind %q", r.Kind)
	}
	return nil
}

// ShardResponse is a worker's partial ResultSet for one shard. Outages
// preserves the request's Branches/Pairs order, so the coordinator can
// splice it into the merged sweep at the shard's precomputed offset.
// Floats survive the JSON round trip exactly: encoding/json emits the
// shortest representation that parses back to the identical float64, so
// the merge is bit-preserving, not approximately so.
type ShardResponse struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Worker  string `json:"worker,omitempty"`

	CaseName          string                     `json:"case_name"`
	Outages           []contingency.OutageResult `json:"outages"`
	Screened          int                        `json:"screened"`
	BaseMaxLoadingPct float64                    `json:"base_max_loading_pct"`
	BaseMinVoltagePU  float64                    `json:"base_min_voltage_pu"`

	// Warmed reports whether the worker's engine was warmed from the
	// artifact store before this shard (observability only; does not
	// affect the merge).
	Warmed bool `json:"warmed,omitempty"`
}

// shardRange is one contiguous slice [Off, Off+Len) of the global
// outage list.
type shardRange struct {
	Off, Len int
}

// splitContiguous cuts n items into at most shards contiguous ranges,
// sizes as equal as possible (the first n%shards ranges get one extra),
// empty ranges dropped. The split depends only on (n, shards), so every
// run of the same sweep shards identically — the idempotency keys and
// merge offsets are stable across retries and coordinator restarts.
func splitContiguous(n, shards int) []shardRange {
	if n <= 0 || shards <= 0 {
		return nil
	}
	if shards > n {
		shards = n
	}
	out := make([]shardRange, 0, shards)
	base, rem := n/shards, n%shards
	off := 0
	for i := 0; i < shards; i++ {
		ln := base
		if i < rem {
			ln++
		}
		out = append(out, shardRange{Off: off, Len: ln})
		off += ln
	}
	return out
}
