package fleet

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gridmind/internal/contingency"
	"gridmind/internal/engine"
	"gridmind/internal/obs"
)

// testWorker boots one fleet worker over its own fresh engine — its own
// process, as far as the protocol is concerned.
func testWorker(t *testing.T, id string, store *engine.Store) *httptest.Server {
	t.Helper()
	w := NewWorker(id, engine.New(), store, obs.NewRegistry())
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// localSweep is the single-process reference: the exact engine-threaded
// N-1 sweep a gridmind-server session runs.
func localSweep(t *testing.T, caseName string, opts SweepOptions) (*contingency.ResultSet, []int) {
	t.Helper()
	eng := engine.New()
	n, err := eng.Pristine(caseName)
	if err != nil {
		t.Fatal(err)
	}
	base, err := eng.BasePF(caseName, n)
	if err != nil || !base.Converged {
		t.Fatalf("base power flow: %v", err)
	}
	a := eng.Artifacts(n)
	var copts contingency.Options
	opts.apply(&copts)
	copts.BaseYbus = a.Ybus()
	copts.Topology = a.Topology()
	copts.Reorder = a.Ordering()
	copts.Pool = eng.SweepPool(caseName)
	if m, err := a.PTDF(); err == nil {
		copts.PTDF = m
	}
	rs, err := contingency.Analyze(n, base, copts)
	if err != nil {
		t.Fatal(err)
	}
	return rs, n.InServiceBranches()
}

// pinResultSets asserts the fleet result reproduces the single-process
// result: every structural field exact, every metric within 1e-9, and the
// severity ranking bit-identical.
func pinResultSets(t *testing.T, want, got *contingency.ResultSet) {
	t.Helper()
	if want.CaseName != got.CaseName || len(want.Outages) != len(got.Outages) || want.Screened != got.Screened {
		t.Fatalf("sweep shape differs: case %q/%q, %d/%d outages, %d/%d screened",
			want.CaseName, got.CaseName, len(want.Outages), len(got.Outages), want.Screened, got.Screened)
	}
	near := func(a, b float64, what string, k int) {
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("outage %d: %s differs: %v vs %v", k, what, a, b)
		}
	}
	near(want.BaseMaxLoadingPct, got.BaseMaxLoadingPct, "base max loading", -1)
	near(want.BaseMinVoltagePU, got.BaseMinVoltagePU, "base min voltage", -1)
	for k := range want.Outages {
		w, g := &want.Outages[k], &got.Outages[k]
		if w.Branch != g.Branch || w.FromBusID != g.FromBusID || w.ToBusID != g.ToBusID ||
			w.IsXfmr != g.IsXfmr || w.Converged != g.Converged || w.Islanded != g.Islanded ||
			w.IsPair != g.IsPair || w.Branch2 != g.Branch2 || w.Gen2 != g.Gen2 ||
			w.Algorithm != g.Algorithm ||
			len(w.Overloads) != len(g.Overloads) || len(w.VoltViols) != len(g.VoltViols) {
			t.Fatalf("outage %d: structural fields differ:\n%+v\n%+v", k, w, g)
		}
		near(w.MaxLoadingPct, g.MaxLoadingPct, "max loading", k)
		near(w.MinVoltagePU, g.MinVoltagePU, "min voltage", k)
		near(w.LoadShedMW, g.LoadShedMW, "load shed", k)
		near(w.Severity, g.Severity, "severity", k)
	}
	wr, gr := want.Rank(contingency.Composite), got.Rank(contingency.Composite)
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("ranking diverges at position %d: outage %d vs %d", i, wr[i], gr[i])
		}
	}
}

func coordinatorFor(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSplitContiguous(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []shardRange
	}{
		{0, 4, nil},
		{5, 0, nil},
		{3, 5, []shardRange{{0, 1}, {1, 1}, {2, 1}}},
		{10, 3, []shardRange{{0, 4}, {4, 3}, {7, 3}}},
		{8, 4, []shardRange{{0, 2}, {2, 2}, {4, 2}, {6, 2}}},
	}
	for _, c := range cases {
		got := splitContiguous(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("split(%d,%d) = %v, want %v", c.n, c.shards, got, c.want)
		}
		covered := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("split(%d,%d)[%d] = %v, want %v", c.n, c.shards, i, got[i], c.want[i])
			}
			if got[i].Off != covered {
				t.Fatalf("split(%d,%d) not contiguous at shard %d", c.n, c.shards, i)
			}
			covered += got[i].Len
		}
		if c.n > 0 && c.shards > 0 && covered != c.n {
			t.Fatalf("split(%d,%d) covers %d items, want %d", c.n, c.shards, covered, c.n)
		}
	}
}

func TestFleetN1MatchesSingleProcess(t *testing.T) {
	opts := SweepOptions{DCScreen: true}
	want, branches := localSweep(t, "case57", opts)

	w1 := testWorker(t, "w1", nil)
	w2 := testWorker(t, "w2", nil)
	met := obs.NewRegistry()
	coord := coordinatorFor(t, Config{Workers: []string{w1.URL, w2.URL}, Metrics: met})

	got, err := coord.SweepN1(context.Background(), "sweep-1", "case57", branches, opts)
	if err != nil {
		t.Fatal(err)
	}
	pinResultSets(t, want, got)
}

func TestFleetN2MatchesSingleProcess(t *testing.T) {
	opts := SweepOptions{DCScreen: true}
	n1, _ := localSweep(t, "case57", opts)

	// Seed the candidate pairs once, deterministically, exactly as the
	// coordinator's caller does.
	eng := engine.New()
	n, err := eng.Pristine("case57")
	if err != nil {
		t.Fatal(err)
	}
	base, err := eng.BasePF("case57", n)
	if err != nil {
		t.Fatal(err)
	}
	pairs := contingency.SeedN2Pairs(n, n1, contingency.N2Options{TopK: 5, MaxPairs: 40})
	if len(pairs) == 0 {
		t.Fatal("no N-2 candidate pairs seeded")
	}

	// Single-process reference over the same explicit pair set.
	a := eng.Artifacts(n)
	var copts contingency.Options
	opts.apply(&copts)
	copts.BaseYbus = a.Ybus()
	copts.Topology = a.Topology()
	copts.Reorder = a.Ordering()
	copts.Pool = eng.SweepPool("case57")
	if m, err := a.PTDF(); err == nil {
		copts.PTDF = m
	}
	want, err := contingency.AnalyzeN2(n, base, nil, contingency.N2Options{Options: copts, Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}

	w1 := testWorker(t, "w1", nil)
	w2 := testWorker(t, "w2", nil)
	coord := coordinatorFor(t, Config{Workers: []string{w1.URL, w2.URL}})
	got, err := coord.SweepN2(context.Background(), "sweep-n2", "case57", pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	pinResultSets(t, want, got)
}

func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := SweepOptions{DCScreen: true}
	want, branches := localSweep(t, "case57", opts)

	for _, workers := range []int{1, 3} {
		urls := make([]string, workers)
		for i := range urls {
			urls[i] = testWorker(t, "w", nil).URL
		}
		coord := coordinatorFor(t, Config{Workers: urls})
		got, err := coord.SweepN1(context.Background(), "sweep-det", "case57", branches, opts)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		pinResultSets(t, want, got)
	}
}

// TestFleetWorkerDeathMidSweep kills one of two workers after its second
// shard — connection-refused from then on — and requires the sweep to
// complete on the survivor with identical results.
func TestFleetWorkerDeathMidSweep(t *testing.T) {
	opts := SweepOptions{DCScreen: true}
	want, branches := localSweep(t, "case57", opts)

	healthy := testWorker(t, "survivor", nil)

	dying := NewWorker("dying", engine.New(), nil, nil)
	var served int32
	var dyingSrv *httptest.Server
	dyingSrv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&served, 1) > 2 {
			// Simulate process death: drop the connection without a
			// response, then refuse everything (CloseClientConnections
			// kills in-flight conns; closing the listener refuses new
			// ones).
			dyingSrv.CloseClientConnections()
			dyingSrv.Listener.Close()
			return
		}
		dying.Handler().ServeHTTP(rw, r)
	}))
	t.Cleanup(func() { dyingSrv.Close() })

	met := obs.NewRegistry()
	coord := coordinatorFor(t, Config{
		Workers:      []string{healthy.URL, dyingSrv.URL},
		Timeout:      30 * time.Second,
		RetryBackoff: 5 * time.Millisecond,
		Metrics:      met,
	})
	got, err := coord.SweepN1(context.Background(), "sweep-death", "case57", branches, opts)
	if err != nil {
		t.Fatal(err)
	}
	pinResultSets(t, want, got)
}

// TestFleetTimeoutRetry hangs a worker past the shard timeout; the
// coordinator must reassign its shards and still merge exactly.
func TestFleetTimeoutRetry(t *testing.T) {
	opts := SweepOptions{DCScreen: true}
	want, branches := localSweep(t, "case57", opts)

	healthy := testWorker(t, "fast", nil)
	hung := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Second) // far past the 200ms shard timeout
	}))
	t.Cleanup(hung.Close)

	coord := coordinatorFor(t, Config{
		Workers:      []string{healthy.URL, hung.URL},
		Timeout:      200 * time.Millisecond,
		Attempts:     10,
		RetryBackoff: 5 * time.Millisecond,
	})
	got, err := coord.SweepN1(context.Background(), "sweep-timeout", "case57", branches, opts)
	if err != nil {
		t.Fatal(err)
	}
	pinResultSets(t, want, got)
}

// TestFleetAllWorkersDeadFails verifies the attempt budget turns a fully
// dead fleet into an error instead of a hang.
func TestFleetAllWorkersDeadFails(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // connection refused from the start
	coord := coordinatorFor(t, Config{
		Workers:      []string{dead.URL},
		Attempts:     2,
		RetryBackoff: time.Millisecond,
	})
	_, err := coord.SweepN1(context.Background(), "sweep-dead", "case57", []int{0, 1, 2}, SweepOptions{})
	if err == nil {
		t.Fatal("sweep against a dead fleet succeeded")
	}
}

// TestWorkerIdempotentReplay posts the same shard twice and requires
// byte-identical responses without re-running the sweep.
func TestWorkerIdempotentReplay(t *testing.T) {
	met := obs.NewRegistry()
	w := NewWorker("w1", engine.New(), nil, met)
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)

	coord := coordinatorFor(t, Config{Workers: []string{srv.URL}})
	req := ShardRequest{
		Version: ProtocolVersion, SweepID: "replay", Shard: 0, Shards: 1,
		Case: "case30", Kind: KindN1, Branches: []int{0, 1, 2, 3},
	}
	first, err := coord.post(context.Background(), srv.URL, &req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := coord.post(context.Background(), srv.URL, &req)
	if err != nil {
		t.Fatal(err)
	}
	if w.shardsDup.Value() != 1 {
		t.Fatalf("duplicate counter = %d, want 1 (memo must replay, not re-run)", w.shardsDup.Value())
	}
	pinResultSets(t,
		&contingency.ResultSet{CaseName: first.CaseName, Outages: first.Outages, Screened: first.Screened,
			BaseMaxLoadingPct: first.BaseMaxLoadingPct, BaseMinVoltagePU: first.BaseMinVoltagePU},
		&contingency.ResultSet{CaseName: second.CaseName, Outages: second.Outages, Screened: second.Screened,
			BaseMaxLoadingPct: second.BaseMaxLoadingPct, BaseMinVoltagePU: second.BaseMinVoltagePU})
}

// TestWorkerRejectsBadRequests covers the protocol guardrails.
func TestWorkerRejectsBadRequests(t *testing.T) {
	w := NewWorker("w1", engine.New(), nil, nil)
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	coord := coordinatorFor(t, Config{Workers: []string{srv.URL}})

	bad := []ShardRequest{
		{Version: ProtocolVersion + 1, SweepID: "s", Case: "case30", Kind: KindN1, Branches: []int{0}},
		{Version: ProtocolVersion, Case: "case30", Kind: KindN1, Branches: []int{0}},
		{Version: ProtocolVersion, SweepID: "s", Case: "case30", Kind: "n3", Branches: []int{0}},
		{Version: ProtocolVersion, SweepID: "s", Case: "case30", Kind: KindN1},
		{Version: ProtocolVersion, SweepID: "s", Case: "case30", Kind: KindN2, Branches: []int{0}},
	}
	for i := range bad {
		if _, err := coord.post(context.Background(), srv.URL, &bad[i]); err == nil {
			t.Fatalf("bad request %d accepted", i)
		}
	}
}

// TestFleetStoreWarmedWorker runs a fleet sweep against a worker mounted
// on a pre-populated artifact store and asserts the worker compiled
// NOTHING: zero Ybus/topology/PTDF builds and zero ordering computations
// — the distributed analogue of the engine store round-trip test.
func TestFleetStoreWarmedWorker(t *testing.T) {
	store, err := engine.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Populate the store from a separate "seeding" process whose ordering
	// cache has seen both the base solve and the sweep dims.
	opts := SweepOptions{DCScreen: true}
	want, branches := localSweep(t, "case57", opts)
	seeder := engine.New()
	sn, err := seeder.Pristine("case57")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seeder.BasePF("case57", sn); err != nil {
		t.Fatal(err)
	}
	a := seeder.Artifacts(sn)
	var copts contingency.Options
	opts.apply(&copts)
	copts.BaseYbus = a.Ybus()
	copts.Topology = a.Topology()
	copts.Reorder = a.Ordering()
	copts.Pool = seeder.SweepPool("case57")
	if m, err := a.PTDF(); err == nil {
		copts.PTDF = m
	}
	sb, err := seeder.BasePF("case57", sn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := contingency.Analyze(sn, sb, copts); err != nil {
		t.Fatal(err)
	}
	if err := seeder.SaveArtifacts(store, sn); err != nil {
		t.Fatal(err)
	}

	// Cold worker process + warm store.
	eng := engine.New()
	w := NewWorker("warmed", eng, store, obs.NewRegistry())
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)

	coord := coordinatorFor(t, Config{Workers: []string{srv.URL}})
	got, err := coord.SweepN1(context.Background(), "sweep-warm", "case57", branches, opts)
	if err != nil {
		t.Fatal(err)
	}
	pinResultSets(t, want, got)

	st := eng.Stats()
	if st.YbusBuilds != 0 || st.TopoBuilds != 0 || st.PTDFBuilds != 0 || st.OPFCreates != 0 {
		t.Fatalf("warmed worker compiled: ybus=%d topo=%d ptdf=%d kkt=%d, want all 0",
			st.YbusBuilds, st.TopoBuilds, st.PTDFBuilds, st.OPFCreates)
	}
	if st.StoreHits != 1 {
		t.Fatalf("store hits = %d, want 1", st.StoreHits)
	}
	n, err := eng.Pristine("case57")
	if err != nil {
		t.Fatal(err)
	}
	if miss := eng.Artifacts(n).OrderingMisses(); miss != 0 {
		t.Fatalf("warmed worker computed %d orderings, want 0", miss)
	}
}
