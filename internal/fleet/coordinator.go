package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"gridmind/internal/contingency"
	"gridmind/internal/obs"
)

// Config wires a Coordinator.
type Config struct {
	// Workers are the base URLs of the fleet ("http://host:port"); at
	// least one is required. A worker that dies mid-sweep only slows the
	// sweep down — its shards are reassigned to the survivors.
	Workers []string
	// ShardsPerWorker sets the shard count to ShardsPerWorker×len(Workers)
	// (capped at the outage count). More shards than workers keeps the
	// fleet load-balanced and bounds the work lost to one worker death.
	// Zero selects 4.
	ShardsPerWorker int
	// Timeout bounds one shard request round trip; an expired shard is
	// retried (the worker memoizes, so a slow-but-alive worker's eventual
	// duplicate is harmless). Zero selects 120s.
	Timeout time.Duration
	// Attempts bounds how often one shard is tried before the sweep
	// fails. Zero selects 2×len(Workers)+1, so a single worker death can
	// never exhaust a shard while any worker survives.
	Attempts int
	// RetryBackoff is the base of the exponential backoff a worker
	// goroutine sleeps after a failed attempt (doubling per consecutive
	// failure, capped at 32×). Zero selects 50ms.
	RetryBackoff time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	// Nil uses a fresh client; Timeout above still applies per request
	// via context.
	Client *http.Client
	// Metrics receives fleet counters and latency histograms; nil records
	// nothing.
	Metrics *obs.Registry
}

// Coordinator shards sweeps across a worker fleet and merges the partial
// results deterministically: the merged ResultSet is bit-identical to the
// single-process sweep's no matter how many workers run, in which order
// shards complete, or which retries happened in between.
type Coordinator struct {
	cfg Config

	shardsOK      *obs.Counter
	shardsRetried *obs.Counter
	sweepsOK      *obs.Counter
	sweepsErr     *obs.Counter
	shardLat      *obs.Histogram
	mergeLat      *obs.Histogram
}

// NewCoordinator validates the config and applies defaults.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: coordinator needs at least one worker URL")
	}
	if cfg.ShardsPerWorker <= 0 {
		cfg.ShardsPerWorker = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2*len(cfg.Workers) + 1
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	c := &Coordinator{cfg: cfg}
	if met := cfg.Metrics; met != nil {
		const h = "Shard dispatches by result (retried = failed attempts that were reassigned)."
		c.shardsOK = met.Counter("gridmind_fleet_shards_total", h, "result", "ok")
		c.shardsRetried = met.Counter("gridmind_fleet_shards_total", h, "result", "retried")
		const hs = "Distributed sweeps by result."
		c.sweepsOK = met.Counter("gridmind_fleet_sweeps_total", hs, "result", "ok")
		c.sweepsErr = met.Counter("gridmind_fleet_sweeps_total", hs, "result", "error")
		c.shardLat = met.Histogram("gridmind_fleet_shard_seconds",
			"Round-trip time of one successful shard dispatch.", nil)
		c.mergeLat = met.Histogram("gridmind_fleet_merge_seconds",
			"Time to splice and validate all shard responses into the merged ResultSet.", nil)
	}
	return c, nil
}

// SweepN1 runs a sharded N-1 sweep over the given outage set (branch
// indices; callers enumerate with n.InServiceBranches() to match the
// single-process default). sweepID must be unique per logical sweep — it
// keys idempotent retries, so reusing an ID for a DIFFERENT outage set
// against the same fleet would replay stale shards.
func (c *Coordinator) SweepN1(ctx context.Context, sweepID, caseName string, branches []int, opts SweepOptions) (*contingency.ResultSet, error) {
	if len(branches) == 0 {
		return nil, errors.New("fleet: N-1 sweep needs a non-empty outage set")
	}
	ranges := splitContiguous(len(branches), c.cfg.ShardsPerWorker*len(c.cfg.Workers))
	reqs := make([]ShardRequest, len(ranges))
	for i, rg := range ranges {
		reqs[i] = ShardRequest{
			Version:  ProtocolVersion,
			SweepID:  sweepID,
			Shard:    i,
			Shards:   len(ranges),
			Case:     caseName,
			Kind:     KindN1,
			Branches: branches[rg.Off : rg.Off+rg.Len],
			Opts:     opts,
		}
	}
	return c.run(ctx, caseName, reqs, ranges, len(branches))
}

// SweepN2 runs a sharded N-2 sweep over an explicit candidate-pair set.
// Callers seed the set once with contingency.SeedN2Pairs (which is
// deterministic), so every worker verifies a disjoint slice of the same
// global candidate ordering. The same sweepID contract as SweepN1.
func (c *Coordinator) SweepN2(ctx context.Context, sweepID, caseName string, pairs []contingency.N2Pair, opts SweepOptions) (*contingency.ResultSet, error) {
	if len(pairs) == 0 {
		return nil, errors.New("fleet: N-2 sweep needs a non-empty pair set")
	}
	ranges := splitContiguous(len(pairs), c.cfg.ShardsPerWorker*len(c.cfg.Workers))
	reqs := make([]ShardRequest, len(ranges))
	for i, rg := range ranges {
		reqs[i] = ShardRequest{
			Version: ProtocolVersion,
			SweepID: sweepID,
			Shard:   i,
			Shards:  len(ranges),
			Case:    caseName,
			Kind:    KindN2,
			Pairs:   pairs[rg.Off : rg.Off+rg.Len],
			Opts:    opts,
		}
	}
	return c.run(ctx, caseName, reqs, ranges, len(pairs))
}

// run dispatches the shard set and merges the responses.
func (c *Coordinator) run(ctx context.Context, caseName string, reqs []ShardRequest, ranges []shardRange, total int) (*contingency.ResultSet, error) {
	results, err := c.dispatch(ctx, reqs)
	if err != nil {
		c.count(c.sweepsErr)
		return nil, err
	}
	start := time.Now()
	rs, err := mergeShards(caseName, reqs, ranges, results, total)
	if err != nil {
		c.count(c.sweepsErr)
		return nil, err
	}
	if c.mergeLat != nil {
		c.mergeLat.ObserveDuration(time.Since(start))
	}
	c.count(c.sweepsOK)
	return rs, nil
}

// dispatch drives the fleet: one goroutine per worker pulls shards from a
// shared queue; a failed attempt (dead worker, timeout, non-200, bad
// payload) requeues the shard — with exponential backoff on the FAILING
// worker only, so a dead worker backs off while survivors drain the
// queue — until the shard's attempt budget is exhausted.
func (c *Coordinator) dispatch(ctx context.Context, reqs []ShardRequest) ([]*ShardResponse, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each shard is held by at most one worker at a time (a failure
	// requeues it exactly once), so the buffer never fills.
	jobs := make(chan int, len(reqs))
	for i := range reqs {
		jobs <- i
	}
	results := make([]*ShardResponse, len(reqs))
	attempts := make([]int32, len(reqs))
	var pending int64 = int64(len(reqs))
	done := make(chan struct{})
	errCh := make(chan error, len(c.cfg.Workers))

	for _, u := range c.cfg.Workers {
		go func(url string) {
			failStreak := 0
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				case sh := <-jobs:
					resp, err := c.post(ctx, url, &reqs[sh])
					if err != nil {
						if n := atomic.AddInt32(&attempts[sh], 1); int(n) >= c.cfg.Attempts {
							errCh <- fmt.Errorf("fleet: shard %s failed after %d attempts, last worker %s: %w",
								reqs[sh].Key(), n, url, err)
							return
						}
						c.count(c.shardsRetried)
						jobs <- sh
						failStreak++
						if !c.backoff(ctx, done, failStreak) {
							return
						}
						continue
					}
					failStreak = 0
					results[sh] = resp
					c.count(c.shardsOK)
					if atomic.AddInt64(&pending, -1) == 0 {
						close(done)
						return
					}
				}
			}
		}(u)
	}

	select {
	case <-done:
		return results, nil
	case err := <-errCh:
		return nil, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// backoff sleeps the failing worker's goroutine; false means shut down.
func (c *Coordinator) backoff(ctx context.Context, done <-chan struct{}, streak int) bool {
	d := c.cfg.RetryBackoff
	if streak > 1 {
		shift := streak - 1
		if shift > 5 {
			shift = 5 // cap at 32× base
		}
		d *= time.Duration(1) << shift
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	case <-ctx.Done():
		return false
	}
}

// post sends one shard request and validates the response envelope.
func (c *Coordinator) post(ctx context.Context, workerURL string, req *ShardRequest) (*ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, workerURL+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	hresp, err := c.cfg.Client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return nil, fmt.Errorf("fleet: worker %s: %s: %s", workerURL, hresp.Status, bytes.TrimSpace(msg))
	}
	var resp ShardResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("fleet: worker %s: bad response: %w", workerURL, err)
	}
	if resp.Version != ProtocolVersion {
		return nil, fmt.Errorf("fleet: worker %s speaks protocol %d, coordinator speaks %d", workerURL, resp.Version, ProtocolVersion)
	}
	if resp.Key != req.Key() {
		return nil, fmt.Errorf("fleet: worker %s answered shard %s for request %s", workerURL, resp.Key, req.Key())
	}
	if c.shardLat != nil {
		c.shardLat.ObserveDuration(time.Since(start))
	}
	return &resp, nil
}

// mergeShards splices the partial results into the single-process result.
// Placement is by the shard's precomputed offset — never by completion
// order — so the merged Outages slice is bit-identical across runs,
// worker counts and retry histories. Base-case metrics must agree across
// shards (every worker solved the same base power flow); disagreement
// means the fleet is not running the configuration the coordinator thinks
// it is, and the merge refuses rather than guesses.
func mergeShards(caseName string, reqs []ShardRequest, ranges []shardRange, results []*ShardResponse, total int) (*contingency.ResultSet, error) {
	rs := &contingency.ResultSet{
		CaseName: caseName,
		Outages:  make([]contingency.OutageResult, total),
	}
	for i, resp := range results {
		if resp == nil {
			return nil, fmt.Errorf("fleet: shard %d missing from merge", i)
		}
		want := ranges[i].Len
		if len(resp.Outages) != want {
			return nil, fmt.Errorf("fleet: shard %s returned %d outages, want %d",
				reqs[i].Key(), len(resp.Outages), want)
		}
		if resp.CaseName != caseName {
			return nil, fmt.Errorf("fleet: shard %s analyzed %q, want %q", reqs[i].Key(), resp.CaseName, caseName)
		}
		if i == 0 {
			rs.BaseMaxLoadingPct = resp.BaseMaxLoadingPct
			rs.BaseMinVoltagePU = resp.BaseMinVoltagePU
		} else if math.Abs(resp.BaseMaxLoadingPct-rs.BaseMaxLoadingPct) > 1e-9 ||
			math.Abs(resp.BaseMinVoltagePU-rs.BaseMinVoltagePU) > 1e-9 {
			return nil, fmt.Errorf("fleet: shard %s base-case metrics disagree with shard 0 (%v/%v vs %v/%v)",
				reqs[i].Key(), resp.BaseMaxLoadingPct, resp.BaseMinVoltagePU, rs.BaseMaxLoadingPct, rs.BaseMinVoltagePU)
		}
		copy(rs.Outages[ranges[i].Off:], resp.Outages)
		rs.Screened += resp.Screened
	}
	return rs, nil
}

func (c *Coordinator) count(ctr *obs.Counter) {
	if ctr != nil {
		ctr.Inc()
	}
}
