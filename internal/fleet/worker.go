package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gridmind/internal/contingency"
	"gridmind/internal/engine"
	"gridmind/internal/model"
	"gridmind/internal/obs"
)

// memoCap bounds the idempotency memo. Retries arrive seconds after the
// original, so only recent shards matter; beyond the cap the oldest keys
// are dropped and a very late duplicate simply recomputes (same bytes —
// the sweep is deterministic).
const memoCap = 512

// Worker executes shard requests against a local engine. One Worker
// serves many sweeps concurrently; every shard runs the engine-threaded
// fast path (shared Ybus/topology/PTDF, shared ordering cache, pooled
// Newton contexts), so the first shard of a case pays the compiles — or
// none at all when an artifact store is mounted and already holds the
// structure — and every later shard is pure solve work.
type Worker struct {
	id    string
	eng   *engine.Engine
	store *engine.Store

	shardsOK  *obs.Counter
	shardsErr *obs.Counter
	shardsDup *obs.Counter
	shardLat  *obs.Histogram

	mu     sync.Mutex
	memo   map[string][]byte // idempotency key -> marshaled response
	order  []string          // memo insertion order, for capped eviction
	warmed map[string]warmState
}

// warmState records the store interaction for one case: whether WarmFrom
// hit, and whether this worker has persisted the artifacts back.
type warmState struct {
	hit   bool
	saved bool
}

// NewWorker wraps an engine as a fleet worker. store may be nil (the
// worker compiles cold); met may be nil (no fleet metrics recorded —
// engine metrics live on the engine's own registry regardless). id names
// the worker in responses and logs.
func NewWorker(id string, eng *engine.Engine, store *engine.Store, met *obs.Registry) *Worker {
	w := &Worker{
		id:     id,
		eng:    eng,
		store:  store,
		memo:   make(map[string][]byte),
		warmed: make(map[string]warmState),
	}
	if met != nil {
		const h = "Shard requests served by result (duplicate = idempotent memo replay)."
		w.shardsOK = met.Counter("gridmind_fleet_worker_shards_total", h, "result", "ok")
		w.shardsErr = met.Counter("gridmind_fleet_worker_shards_total", h, "result", "error")
		w.shardsDup = met.Counter("gridmind_fleet_worker_shards_total", h, "result", "duplicate")
		w.shardLat = met.Histogram("gridmind_fleet_worker_shard_seconds",
			"Wall-clock time to execute one shard (excludes memo replays).", nil)
	}
	return w
}

// Handler returns the worker's HTTP surface: POST /shard runs (or
// replays) a shard, GET /healthz answers readiness probes.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shard", w.handleShard)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(rw, "ok %s\n", w.id)
	})
	return mux
}

func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		w.count(w.shardsErr)
		http.Error(rw, "bad shard request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.validate(); err != nil {
		w.count(w.shardsErr)
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}

	// Idempotent replay: a coordinator that timed out and retried gets
	// the exact bytes of the original response.
	if body, ok := w.replay(req.Key()); ok {
		w.count(w.shardsDup)
		writeJSONBytes(rw, body)
		return
	}

	start := time.Now()
	resp, err := w.runShard(&req)
	if err != nil {
		w.count(w.shardsErr)
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		w.count(w.shardsErr)
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	w.memoize(req.Key(), body)
	w.count(w.shardsOK)
	if w.shardLat != nil {
		w.shardLat.ObserveDuration(time.Since(start))
	}
	writeJSONBytes(rw, body)
}

func writeJSONBytes(rw http.ResponseWriter, body []byte) {
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(body)
}

func (w *Worker) count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (w *Worker) replay(key string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	body, ok := w.memo[key]
	return body, ok
}

func (w *Worker) memoize(key string, body []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.memo[key]; ok {
		return
	}
	for len(w.order) >= memoCap {
		delete(w.memo, w.order[0])
		w.order = w.order[1:]
	}
	w.memo[key] = body
	w.order = append(w.order, key)
}

// runShard executes one shard with the engine-threaded sweep path.
func (w *Worker) runShard(req *ShardRequest) (*ShardResponse, error) {
	n, err := w.eng.Pristine(req.Case)
	if err != nil {
		return nil, err
	}
	warmed := w.ensureWarm(req.Case, n)
	base, err := w.eng.BasePF(req.Case, n)
	if err != nil {
		return nil, fmt.Errorf("fleet: base power flow for %s: %w", req.Case, err)
	}

	a := w.eng.Artifacts(n)
	var opts contingency.Options
	req.Opts.apply(&opts)
	opts.BaseYbus = a.Ybus()
	opts.Topology = a.Topology()
	opts.Reorder = a.Ordering()
	opts.Pool = w.eng.SweepPool(req.Case)
	opts.Metrics = w.eng.Metrics()
	if m, err := a.PTDF(); err == nil {
		opts.PTDF = m
	}

	var rs *contingency.ResultSet
	switch req.Kind {
	case KindN1:
		opts.Branches = req.Branches
		rs, err = contingency.Analyze(n, base, opts)
	case KindN2:
		rs, err = contingency.AnalyzeN2(n, base, nil, contingency.N2Options{
			Options: opts,
			Pairs:   req.Pairs,
		})
	default:
		err = fmt.Errorf("fleet: unknown sweep kind %q", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	w.maybeSave(req.Case, n)

	return &ShardResponse{
		Version:           ProtocolVersion,
		Key:               req.Key(),
		Worker:            w.id,
		CaseName:          rs.CaseName,
		Outages:           rs.Outages,
		Screened:          rs.Screened,
		BaseMaxLoadingPct: rs.BaseMaxLoadingPct,
		BaseMinVoltagePU:  rs.BaseMinVoltagePU,
		Warmed:            warmed,
	}, nil
}

// ensureWarm tries the artifact store once per case; later shards reuse
// the outcome. A corrupt or version-skewed entry is deliberately not an
// error here — the engine counted it on its registry and stayed cold, and
// compiling is the correct fallback.
func (w *Worker) ensureWarm(caseName string, n *model.Network) bool {
	if w.store == nil {
		return false
	}
	w.mu.Lock()
	st, tried := w.warmed[caseName]
	w.mu.Unlock()
	if tried {
		return st.hit
	}
	hit, _ := w.eng.WarmFrom(w.store, n)
	w.mu.Lock()
	if _, raced := w.warmed[caseName]; !raced {
		w.warmed[caseName] = warmState{hit: hit}
	}
	st = w.warmed[caseName]
	w.mu.Unlock()
	return st.hit
}

// maybeSave persists the case's artifacts after the first completed shard
// of a cold case, so the NEXT cold worker (or the next restart of this
// one) warms from disk. A warmed case is never re-saved: its store entry
// is already current for the signature.
func (w *Worker) maybeSave(caseName string, n *model.Network) {
	if w.store == nil {
		return
	}
	w.mu.Lock()
	st := w.warmed[caseName]
	done := st.hit || st.saved
	if !done {
		st.saved = true
		w.warmed[caseName] = st
	}
	w.mu.Unlock()
	if done {
		return
	}
	// Best-effort: a full store disk costs the next cold start a compile,
	// nothing else.
	_ = w.eng.SaveArtifacts(w.store, n)
}
