// Command gridmind is the conversational front door (§3.1): type intent,
// the agents parse it, plan a minimal sequence, call the deterministic
// solvers, validate the numbers, and reply.
//
// Usage:
//
//	gridmind                          # REPL with the default simulated model
//	gridmind -model "GPT-5 Mini"      # pick a simulated backend profile
//	gridmind -endpoint http://...     # route to a live chat-completions API
//	gridmind -q "Solve IEEE 118"      # one-shot query, then exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"gridmind"
	"gridmind/internal/report"
)

func main() {
	modelName := flag.String("model", gridmind.ModelGPTO3, "simulated model profile (see -list-models)")
	endpoint := flag.String("endpoint", "", "chat-completions endpoint for a live LLM backend")
	query := flag.String("q", "", "one-shot query; omit for the interactive REPL")
	listModels := flag.Bool("list-models", false, "print the evaluated model profiles and exit")
	metricsOut := flag.String("metrics", "", "write the instrumentation log (CSV) to this file on exit")
	flag.Parse()

	if *listModels {
		for _, m := range gridmind.Models() {
			fmt.Println(m)
		}
		return
	}
	if *endpoint == "" {
		if err := gridmind.ValidateModel(*modelName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	gm := gridmind.New(gridmind.Options{Model: *modelName, Endpoint: *endpoint})
	ctx := context.Background()

	defer func() {
		if *metricsOut == "" {
			return
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			return
		}
		defer f.Close()
		if err := gm.WriteMetricsCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}()

	if *query != "" {
		if !ask(ctx, gm, *query) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("GridMind — conversational power system analysis")
	fmt.Printf("backend: %s   cases: %s\n", *modelName, strings.Join(gridmind.CaseNames(), ", "))
	fmt.Println(`try: "Solve IEEE 118", "Increase the load at bus 10 to 50 MW",`)
	fmt.Println(`     "What are the most critical contingencies?", or ":help"`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("\ngridmind> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch strings.ToLower(line) {
		case "":
			continue
		case "exit", "quit":
			return
		}
		if strings.HasPrefix(line, ":") {
			command(gm, line)
			continue
		}
		ask(ctx, gm, line)
	}
}

// command handles the non-conversational REPL verbs (reports, session
// persistence, instrumentation).
func command(gm *gridmind.GridMind, line string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":help":
		report.Banner(os.Stdout)
	case ":report":
		sess := gm.Session()
		n, err := sess.Network()
		if err != nil {
			fmt.Println("no case loaded yet")
			return
		}
		if sol, _ := sess.ACOPF(); sol != nil {
			report.Solution(os.Stdout, n, sol)
			report.QualityReport(os.Stdout, gridmind.AssessQuality(n, sol))
		} else {
			fmt.Println("no ACOPF solution yet — ask me to solve a case")
		}
		if rs, _ := sess.CASweep(); rs != nil {
			fmt.Println()
			report.Sweep(os.Stdout, rs, 5)
		}
	case ":session":
		report.Session(os.Stdout, gm.Session())
	case ":metrics":
		if err := gm.WriteMetricsCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	case ":save":
		if len(fields) < 2 {
			fmt.Println("usage: :save FILE")
			return
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		if err := gm.PersistSession(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Println("session saved to", fields[1])
	case ":load":
		if len(fields) < 2 {
			fmt.Println("usage: :load FILE")
			return
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		if err := gm.RestoreSession(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Println("session restored from", fields[1])
		report.Session(os.Stdout, gm.Session())
	default:
		fmt.Printf("unknown command %s (try :help)\n", fields[0])
	}
}

func ask(ctx context.Context, gm *gridmind.GridMind, q string) bool {
	ex, err := gm.Ask(ctx, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	fmt.Println(ex.Reply)
	fmt.Printf("\n[%d agent turn(s), %.1f s session time, success=%t]\n",
		len(ex.Turns), ex.Latency.Seconds(), ex.Success)
	return ex.Success
}
