package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"gridmind"
	"gridmind/internal/engine"
	"gridmind/internal/fleet"
)

// runWorker serves the fleet worker surface: POST /shard executes (or
// idempotently replays) one sweep shard, GET /healthz answers probes,
// GET /metrics exposes the engine + worker registry in Prometheus text
// format. It blocks until the process is signalled.
func runWorker(addr, id, artifactDir string, killAfter int, eng *gridmind.Engine, met *gridmind.MetricsRegistry) {
	if id == "" {
		id = addr
	}
	var store *engine.Store
	if artifactDir != "" {
		var err error
		if store, err = engine.NewStore(artifactDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           workerRoutes(id, killAfter, eng, store, met),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("gridmind-server worker %s listening on %s (artifact store %q)", id, addr, artifactDir)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("gridmind-server worker: shutdown signal received, draining")
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer shutCancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("gridmind-server worker: forced shutdown: %v", err)
		}
	}
}

// workerRoutes builds the worker-mode HTTP surface.
func workerRoutes(id string, killAfter int, eng *gridmind.Engine, store *engine.Store, met *gridmind.MetricsRegistry) http.Handler {
	w := fleet.NewWorker(id, eng, store, met)
	mux := http.NewServeMux()
	mux.Handle("/", killAfterN(killAfter, w.Handler()))
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		met.WritePrometheus(rw)
	})
	return mux
}

// killAfterN is the deterministic death hook behind -worker-kill-after:
// after n shard requests have been admitted, the process exits cold —
// before writing any response — so the coordinator observes a dropped
// connection exactly as it would from a crashed worker. CI uses it to
// prove a sweep survives losing a worker mid-run.
func killAfterN(n int, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	var admitted int64
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/shard" {
			if atomic.AddInt64(&admitted, 1) > int64(n) {
				log.Printf("gridmind-server worker: -worker-kill-after %d reached, dying", n)
				os.Exit(1)
			}
		}
		next.ServeHTTP(rw, r)
	})
}
