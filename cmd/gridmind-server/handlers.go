package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gridmind"
	"gridmind/internal/llm"
	"gridmind/internal/obs"
)

// server bundles the HTTP surface: the session manager, the shared
// artifact engine, the process metrics registry behind /metrics, a
// default session serving session-less /ask calls (back-compat with the
// single-tenant API), and the simulated chat-completions backend.
type server struct {
	mgr *sessionManager
	eng *gridmind.Engine
	// met is the process-wide obs registry (the engine's); every layer —
	// engine, gateway, tools, agents, session manager — publishes here.
	met *obs.Registry
	def *gridmind.GridMind
	// defMu serializes asks into the default session, matching the
	// per-session discipline managed sessions get from the manager.
	defMu sync.Mutex
	sim   http.Handler
	// maxBody bounds /ask and /sessions request bodies in bytes.
	maxBody int64
	// gw, when non-nil, is the shared resilient LLM gateway every session
	// rides; its per-deployment counters are exported on /metrics.
	gw *gridmind.Gateway
	// maxQueue bounds in-flight asks on the default session (managed
	// sessions enforce theirs in the manager); 0 = unbounded.
	maxQueue int
	defBusy  atomic.Int64
}

// Retry-After hints, in seconds. A full queue drains as soon as the
// current solve finishes; an all-breakers-open outage waits out a breaker
// cooldown.
const (
	retryAfterQueueFull   = 1
	retryAfterUnavailable = 15
)

// writeJSON writes a JSON response with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders errors as {"error": ...} with a proper status instead
// of a bare 500.
func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// errStatus maps session-manager and backend errors onto HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, errAtCapacity):
		return http.StatusConflict
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, llm.ErrUnavailable):
		// Every gateway deployment's breaker is open: a temporary outage,
		// not a failed conversation — the session stays usable.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// retryAfter returns the Retry-After hint in seconds for a status that
// warrants one, or 0.
func retryAfter(status int) int {
	switch status {
	case http.StatusTooManyRequests:
		return retryAfterQueueFull
	case http.StatusServiceUnavailable:
		return retryAfterUnavailable
	}
	return 0
}

// decodeBody JSON-decodes a size-limited request body, distinguishing
// oversized bodies (413) from malformed ones (400).
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.maxBody))
			return false
		}
		writeErr(w, http.StatusBadRequest, "malformed JSON body")
		return false
	}
	return true
}

// routes assembles the HTTP mux.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ask", s.handleAsk)
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/sessions/", s.handleSessionByID)
	mux.HandleFunc("/cases", s.handleCases)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/v1/chat/completions", s.sim)
	return mux
}

// handleAsk routes one query: into the named session when session_id is
// given, into the shared default session otherwise (the original
// single-tenant contract).
func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in struct {
		Query     string `json:"query"`
		SessionID string `json:"session_id"`
	}
	if !s.decodeBody(w, r, &in) {
		return
	}
	if strings.TrimSpace(in.Query) == "" {
		writeErr(w, http.StatusBadRequest, `body must be {"query": "...", "session_id": "optional"}`)
		return
	}
	var ex *gridmind.Exchange
	var err error
	if in.SessionID != "" {
		ex, err = s.mgr.ask(r.Context(), in.SessionID, in.Query)
	} else {
		ex, err = s.askDefault(r.Context(), in.Query)
	}
	if err != nil {
		status := errStatus(err)
		if ra := retryAfter(status); ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		writeErr(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session_id": in.SessionID,
		"reply":      ex.Reply,
		"success":    ex.Success,
		"turns":      len(ex.Turns),
		"latency_s":  ex.Latency.Seconds(),
		"workflow":   ex.Steps,
	})
}

// askDefault routes a session-less ask into the shared default session,
// applying the same in-flight bound managed sessions get.
func (s *server) askDefault(ctx context.Context, query string) (*gridmind.Exchange, error) {
	if s.maxQueue > 0 && s.defBusy.Add(1) > int64(s.maxQueue) {
		s.defBusy.Add(-1)
		return nil, errQueueFull
	}
	defer s.defBusy.Add(-1)
	s.defMu.Lock()
	defer s.defMu.Unlock()
	return s.def.Ask(ctx, query)
}

// handleSessions creates (POST) or lists (GET) sessions.
func (s *server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var in struct {
			Model string `json:"model"`
		}
		// An empty body is a valid "default model" request.
		if r.ContentLength != 0 && !s.decodeBody(w, r, &in) {
			return
		}
		model := in.Model
		if model == "" {
			model = gridmind.ModelGPTO3
		}
		if err := gridmind.ValidateModel(model); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		sess, err := s.mgr.create(model)
		if err != nil {
			writeErr(w, errStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{
			"session_id": sess.ID,
			"model":      sess.Model,
			"created_at": sess.Created,
		})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"live":     s.mgr.len(),
			"sessions": s.mgr.list(),
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "POST or GET only")
	}
}

// handleSessionByID deletes (DELETE) or touches (POST) one session. A
// POST on a spilled id restores it from disk without routing a query
// through it — the explicit form of the transparent restore /ask does.
func (s *server) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/sessions/")
	if id == "" || strings.Contains(id, "/") {
		writeErr(w, http.StatusNotFound, "unknown resource")
		return
	}
	switch r.Method {
	case http.MethodDelete:
		if !s.mgr.remove(id) {
			writeErr(w, http.StatusNotFound, errSessionNotFound.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodPost:
		ms, err := s.mgr.get(id)
		if err != nil {
			writeErr(w, errStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"session_id": ms.ID,
			"model":      ms.Model,
			"created_at": ms.Created,
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "POST or DELETE only")
	}
}

func (s *server) handleCases(w http.ResponseWriter, r *http.Request) {
	rows, err := gridmind.CaseSummaries()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

// handleMetrics serves the process metrics registry in Prometheus text
// exposition format: engine artifact hit/miss counters, per-deployment
// gateway counters and breaker state, per-tool invocation counts and
// latency histograms, per-agent interaction metrics, and session
// lifecycle (live gauge, spill/restore counts). ?format=csv keeps the
// legacy per-interaction CSV dump.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "csv" {
		s.handleMetricsCSV(w)
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	if err := s.met.WritePrometheus(w); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

// handleMetricsCSV is the pre-Prometheus /metrics body, kept verbatim
// behind ?format=csv: the instrumentation CSV merged across the default
// session and every live managed session, followed by comment-prefixed
// gauge lines for the engine and gateway.
func (s *server) handleMetricsCSV(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/csv")
	fmt.Fprintln(w, "model,agent,latency_s,prompt_tokens,completion_tokens,tool_calls,validation_errors,factual_slips,recoveries,success")
	writeRows := func(rows []gridmind.Interaction) {
		for _, row := range rows {
			fmt.Fprintf(w, "%s,%s,%.3f,%d,%d,%d,%d,%d,%d,%t\n",
				row.Model, row.Agent, row.Latency.Seconds(),
				row.PromptTokens, row.CompletionTokens, row.ToolCalls,
				row.ValidationErrors, row.FactualSlips, row.Recoveries, row.Success)
		}
	}
	writeRows(s.def.Metrics())
	s.mgr.each(func(ms *managedSession) { writeRows(ms.gm.Metrics()) })

	st := s.eng.Stats()
	fmt.Fprintf(w, "# live_sessions %d\n", s.mgr.len())
	fmt.Fprintf(w, "# engine_pristine_hits %d\n# engine_pristine_misses %d\n", st.PristineHits, st.PristineMisses)
	fmt.Fprintf(w, "# engine_struct_hits %d\n# engine_struct_misses %d\n", st.StructHits, st.StructMisses)
	fmt.Fprintf(w, "# engine_ybus_builds %d\n# engine_topology_builds %d\n# engine_ptdf_builds %d\n",
		st.YbusBuilds, st.TopoBuilds, st.PTDFBuilds)
	fmt.Fprintf(w, "# engine_opf_context_reuses %d\n# engine_opf_context_creates %d\n", st.OPFReuses, st.OPFCreates)
	fmt.Fprintf(w, "# engine_sweep_pool_hits %d\n# engine_sweep_pool_new %d\n", st.SweepPoolHits, st.SweepPoolNew)
	fmt.Fprintf(w, "# engine_base_pf_hits %d\n# engine_base_pf_solves %d\n", st.BasePFHits, st.BasePFSolves)

	if s.gw != nil {
		gs := s.gw.Stats()
		fmt.Fprintf(w, "# gateway_requests %d\n# gateway_succeeded %d\n# gateway_failed %d\n",
			gs.Requests, gs.Succeeded, gs.Failed)
		fmt.Fprintf(w, "# gateway_retries %d\n# gateway_exhausted %d\n", gs.Retries, gs.Exhausted)
		for _, d := range gs.Deployments {
			fmt.Fprintf(w, "# gateway_deployment %s state=%s attempts=%d successes=%d failures=%d timeouts=%d probes=%d breaker_opens=%d breaker_closes=%d mean_latency_ms=%.1f\n",
				d.Name, d.State, d.Attempts, d.Successes, d.Failures, d.Timeouts,
				d.Probes, d.BreakerOpens, d.BreakerCloses,
				float64(d.MeanLatency.Microseconds())/1000)
		}
	}
}
