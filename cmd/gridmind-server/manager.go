package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"gridmind"
	"gridmind/internal/obs"
)

// Session-manager errors, mapped to HTTP statuses by the handlers.
var (
	errSessionNotFound = errors.New("session not found (expired or never created)")
	errAtCapacity      = errors.New("session limit reached; retry after idle sessions expire")
	errQueueFull       = errors.New("session ask queue full; retry shortly")
)

// managedSession is one live conversational session. Asks within a
// session are serialized by mu (the coordinator's shared context is a
// conversation, not a queue); distinct sessions run fully in parallel.
type managedSession struct {
	ID      string
	Model   string
	Created time.Time

	mu       sync.Mutex // serializes Ask within the session
	gm       *gridmind.GridMind
	lastUsed time.Time // guarded by the manager's lock
	asks     int64     // guarded by the manager's lock
	busy     int       // in-flight asks; guarded by the manager's lock
}

// sessionManager owns the live-session table: creation, id routing, idle
// expiry and the per-session/cross-session concurrency discipline.
type sessionManager struct {
	factory     func(model string) *gridmind.GridMind
	idleTTL     time.Duration
	maxSessions int
	// maxQueue bounds in-flight asks per session (in-flight = running plus
	// queued behind the session lock); 0 = unbounded. Without a bound, one
	// hot session accumulates goroutines without limit — each waiting ask
	// is a parked goroutine plus an open connection.
	maxQueue int
	// spillDir, when non-empty, turns idle expiry into spill-to-disk: the
	// janitor persists the session there instead of dropping it, and the
	// next touch of the id transparently restores it.
	spillDir string

	mu       sync.Mutex
	sessions map[string]*managedSession
	now      func() time.Time

	stop chan struct{}
	wg   sync.WaitGroup

	// Lifecycle instruments on the process registry.
	expired     *obs.Counter
	spills      *obs.Counter
	spillErrs   *obs.Counter
	restores    *obs.Counter
	restoreErrs *obs.Counter
	restoreLat  *obs.Histogram
}

// newSessionManager starts a manager and its idle-expiry janitor. met is
// the registry lifecycle instruments land on; nil gets a private one.
func newSessionManager(factory func(string) *gridmind.GridMind, idleTTL time.Duration, maxSessions, maxQueue int, spillDir string, met *obs.Registry) *sessionManager {
	if met == nil {
		met = obs.NewRegistry()
	}
	m := &sessionManager{
		factory:     factory,
		idleTTL:     idleTTL,
		maxSessions: maxSessions,
		maxQueue:    maxQueue,
		spillDir:    spillDir,
		sessions:    make(map[string]*managedSession),
		now:         time.Now,
		stop:        make(chan struct{}),
		expired:     met.Counter("gridmind_sessions_expired_total", "Sessions dropped or spilled by the idle-expiry janitor."),
		spills:      met.Counter("gridmind_sessions_spilled_total", "Idle sessions persisted to the spill directory."),
		spillErrs:   met.Counter("gridmind_sessions_spill_errors_total", "Failed spill attempts (session kept live)."),
		restores:    met.Counter("gridmind_sessions_restored_total", "Spilled sessions transparently restored on touch."),
		restoreErrs: met.Counter("gridmind_sessions_restore_errors_total", "Spill files that failed to decode or restore."),
		restoreLat:  met.Histogram("gridmind_sessions_restore_latency_seconds", "Latency of restoring a spilled session from disk.", obs.DefLatencyBuckets),
	}
	met.GaugeFunc("gridmind_sessions_live", "Live sessions in the manager table.",
		func() float64 { return float64(m.len()) })
	if idleTTL > 0 {
		m.wg.Add(1)
		go m.janitor()
	}
	return m
}

func (m *sessionManager) janitor() {
	defer m.wg.Done()
	tick := m.idleTTL / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.expireIdle()
		}
	}
}

// expireIdle drops sessions idle past the TTL; it returns how many died.
// A session with an in-flight ask is never idle, however long the solve
// runs — expiring it mid-use would 404 the very next request of an
// actively-used conversation. With a spill directory configured the
// session state is persisted before the table entry goes away, so the
// next ask restores it instead of 404ing; a failed spill keeps the
// session live rather than dropping conversation state on the floor.
// Persisting under the manager lock is deliberate: the session is idle
// (busy == 0) and holding the lock closes the window where an ask could
// land between the delete and the write.
func (m *sessionManager) expireIdle() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.now().Add(-m.idleTTL)
	n := 0
	for id, s := range m.sessions {
		if s.busy == 0 && s.lastUsed.Before(cutoff) {
			if m.spillDir != "" {
				if err := m.spill(s); err != nil {
					m.spillErrs.Inc()
					continue
				}
				m.spills.Inc()
			}
			delete(m.sessions, id)
			m.expired.Inc()
			n++
		}
	}
	return n
}

// spillEnvelope is the on-disk spill file: manager bookkeeping plus the
// session's own Persist payload, one JSON document per session id.
type spillEnvelope struct {
	SessionID string          `json:"session_id"`
	Model     string          `json:"model"`
	Created   time.Time       `json:"created_at"`
	Asks      int64           `json:"asks"`
	Session   json.RawMessage `json:"session"`
}

// spillIDRe guards the spill path against ids with path separators or
// other traversal material; generated ids are "sess-" + hex.
var spillIDRe = regexp.MustCompile(`^[A-Za-z0-9_-]+$`)

// spillPath maps a session id to its spill file; false when spilling is
// disabled or the id is not a safe file-name component.
func (m *sessionManager) spillPath(id string) (string, bool) {
	if m.spillDir == "" || !spillIDRe.MatchString(id) {
		return "", false
	}
	return filepath.Join(m.spillDir, id+".json"), true
}

// spill persists one idle session to disk. Caller holds m.mu.
func (m *sessionManager) spill(s *managedSession) error {
	path, ok := m.spillPath(s.ID)
	if !ok {
		return fmt.Errorf("session id %q is not spillable", s.ID)
	}
	var buf bytes.Buffer
	if err := s.gm.PersistSession(&buf); err != nil {
		return err
	}
	data, err := json.Marshal(spillEnvelope{
		SessionID: s.ID, Model: s.Model, Created: s.Created,
		Asks: s.asks, Session: buf.Bytes(),
	})
	if err != nil {
		return err
	}
	// Write-then-rename so a crash mid-write never leaves a torn file
	// where the restore path will look.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// restore revives a spilled session: decode the envelope, rebuild a
// GridMind via the factory, replay the persisted session into it, and
// install it back in the table. Returns errSessionNotFound when there is
// no (usable) spill file, which the handlers map to 404 — exactly what a
// plain expiry looked like before spilling existed.
func (m *sessionManager) restore(id string) (*managedSession, error) {
	path, ok := m.spillPath(id)
	if !ok {
		return nil, errSessionNotFound
	}
	data, err := os.ReadFile(path)
	if err != nil {
		// A racing restore may have consumed the file between our table
		// miss and this read; it installs before removing, so re-check.
		m.mu.Lock()
		s, ok := m.sessions[id]
		m.mu.Unlock()
		if ok {
			return s, nil
		}
		return nil, errSessionNotFound
	}
	start := time.Now()
	var env spillEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		m.restoreErrs.Inc()
		return nil, errSessionNotFound
	}
	gm := m.factory(env.Model)
	if err := gm.RestoreSession(bytes.NewReader(env.Session)); err != nil {
		m.restoreErrs.Inc()
		return nil, errSessionNotFound
	}
	m.mu.Lock()
	if s, ok := m.sessions[id]; ok {
		// A racing restore of the same id won; use the installed one.
		m.mu.Unlock()
		return s, nil
	}
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		m.mu.Unlock()
		return nil, errAtCapacity
	}
	s := &managedSession{
		ID: id, Model: env.Model, Created: env.Created,
		gm: gm, lastUsed: m.now(), asks: env.Asks,
	}
	m.sessions[id] = s
	m.mu.Unlock()
	os.Remove(path)
	m.restores.Inc()
	m.restoreLat.ObserveDuration(time.Since(start))
	return s, nil
}

// close stops the janitor.
func (m *sessionManager) close() {
	close(m.stop)
	m.wg.Wait()
}

// create registers a new session for the model profile.
func (m *sessionManager) create(model string) (*managedSession, error) {
	var raw [9]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("session id: %w", err)
	}
	id := "sess-" + hex.EncodeToString(raw[:])
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		return nil, errAtCapacity
	}
	now := m.now()
	s := &managedSession{
		ID:       id,
		Model:    model,
		Created:  now,
		gm:       m.factory(model),
		lastUsed: now,
	}
	m.sessions[id] = s
	return s, nil
}

// get returns a live session, refreshing its idle clock; a spilled
// session is restored first.
func (m *sessionManager) get(id string) (*managedSession, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		s.lastUsed = m.now()
		m.mu.Unlock()
		return s, nil
	}
	m.mu.Unlock()
	s, err := m.restore(id)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	s.lastUsed = m.now()
	m.mu.Unlock()
	return s, nil
}

// remove deletes a session — live table entry, spill file, or both;
// false when neither exists.
func (m *sessionManager) remove(id string) bool {
	m.mu.Lock()
	_, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if path, valid := m.spillPath(id); valid {
		if err := os.Remove(path); err == nil {
			ok = true
		}
	}
	return ok
}

// ask routes one query into a session, serialized per session (two asks
// into the same session queue behind each other; asks into different
// sessions run concurrently).
func (m *sessionManager) ask(ctx context.Context, id, query string) (*gridmind.Exchange, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		// The id may name a spilled session; restoring here is what makes
		// spill-to-disk transparent to clients.
		var err error
		if s, err = m.restore(id); err != nil {
			return nil, err
		}
		m.mu.Lock()
	}
	if m.maxQueue > 0 && s.busy >= m.maxQueue {
		// The hot-session pileup guard: shed load with a 429 instead of
		// parking an unbounded line of goroutines behind the session lock.
		m.mu.Unlock()
		return nil, errQueueFull
	}
	s.busy++
	s.lastUsed = m.now()
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		s.busy--
		s.asks++
		s.lastUsed = m.now()
		m.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gm.Ask(ctx, query)
}

// sessionInfo is the /sessions listing row.
type sessionInfo struct {
	ID       string    `json:"session_id"`
	Model    string    `json:"model"`
	Created  time.Time `json:"created_at"`
	LastUsed time.Time `json:"last_used_at"`
	Asks     int64     `json:"asks"`
}

// list snapshots the live sessions, oldest first.
func (m *sessionManager) list() []sessionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]sessionInfo, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, sessionInfo{
			ID: s.ID, Model: s.Model, Created: s.Created,
			LastUsed: s.lastUsed, Asks: s.asks,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Created.Before(out[b].Created) })
	return out
}

// len reports the live-session gauge.
func (m *sessionManager) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// each runs fn over every live session (used by /metrics to merge rows).
func (m *sessionManager) each(fn func(*managedSession)) {
	m.mu.Lock()
	snapshot := make([]*managedSession, 0, len(m.sessions))
	for _, s := range m.sessions {
		snapshot = append(snapshot, s)
	}
	m.mu.Unlock()
	sort.Slice(snapshot, func(a, b int) bool { return snapshot[a].Created.Before(snapshot[b].Created) })
	for _, s := range snapshot {
		fn(s)
	}
}
