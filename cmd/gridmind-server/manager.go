package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gridmind"
)

// Session-manager errors, mapped to HTTP statuses by the handlers.
var (
	errSessionNotFound = errors.New("session not found (expired or never created)")
	errAtCapacity      = errors.New("session limit reached; retry after idle sessions expire")
	errQueueFull       = errors.New("session ask queue full; retry shortly")
)

// managedSession is one live conversational session. Asks within a
// session are serialized by mu (the coordinator's shared context is a
// conversation, not a queue); distinct sessions run fully in parallel.
type managedSession struct {
	ID      string
	Model   string
	Created time.Time

	mu       sync.Mutex // serializes Ask within the session
	gm       *gridmind.GridMind
	lastUsed time.Time // guarded by the manager's lock
	asks     int64     // guarded by the manager's lock
	busy     int       // in-flight asks; guarded by the manager's lock
}

// sessionManager owns the live-session table: creation, id routing, idle
// expiry and the per-session/cross-session concurrency discipline.
type sessionManager struct {
	factory     func(model string) *gridmind.GridMind
	idleTTL     time.Duration
	maxSessions int
	// maxQueue bounds in-flight asks per session (in-flight = running plus
	// queued behind the session lock); 0 = unbounded. Without a bound, one
	// hot session accumulates goroutines without limit — each waiting ask
	// is a parked goroutine plus an open connection.
	maxQueue int

	mu       sync.Mutex
	sessions map[string]*managedSession
	now      func() time.Time

	stop chan struct{}
	wg   sync.WaitGroup
}

// newSessionManager starts a manager and its idle-expiry janitor.
func newSessionManager(factory func(string) *gridmind.GridMind, idleTTL time.Duration, maxSessions, maxQueue int) *sessionManager {
	m := &sessionManager{
		factory:     factory,
		idleTTL:     idleTTL,
		maxSessions: maxSessions,
		maxQueue:    maxQueue,
		sessions:    make(map[string]*managedSession),
		now:         time.Now,
		stop:        make(chan struct{}),
	}
	if idleTTL > 0 {
		m.wg.Add(1)
		go m.janitor()
	}
	return m
}

func (m *sessionManager) janitor() {
	defer m.wg.Done()
	tick := m.idleTTL / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.expireIdle()
		}
	}
}

// expireIdle drops sessions idle past the TTL; it returns how many died.
// A session with an in-flight ask is never idle, however long the solve
// runs — expiring it mid-use would 404 the very next request of an
// actively-used conversation.
func (m *sessionManager) expireIdle() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.now().Add(-m.idleTTL)
	n := 0
	for id, s := range m.sessions {
		if s.busy == 0 && s.lastUsed.Before(cutoff) {
			delete(m.sessions, id)
			n++
		}
	}
	return n
}

// close stops the janitor.
func (m *sessionManager) close() {
	close(m.stop)
	m.wg.Wait()
}

// create registers a new session for the model profile.
func (m *sessionManager) create(model string) (*managedSession, error) {
	var raw [9]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("session id: %w", err)
	}
	id := "sess-" + hex.EncodeToString(raw[:])
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		return nil, errAtCapacity
	}
	now := m.now()
	s := &managedSession{
		ID:       id,
		Model:    model,
		Created:  now,
		gm:       m.factory(model),
		lastUsed: now,
	}
	m.sessions[id] = s
	return s, nil
}

// get returns a live session, refreshing its idle clock.
func (m *sessionManager) get(id string) (*managedSession, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, errSessionNotFound
	}
	s.lastUsed = m.now()
	return s, nil
}

// remove deletes a session; false when it does not exist.
func (m *sessionManager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return false
	}
	delete(m.sessions, id)
	return true
}

// ask routes one query into a session, serialized per session (two asks
// into the same session queue behind each other; asks into different
// sessions run concurrently).
func (m *sessionManager) ask(ctx context.Context, id, query string) (*gridmind.Exchange, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		return nil, errSessionNotFound
	}
	if m.maxQueue > 0 && s.busy >= m.maxQueue {
		// The hot-session pileup guard: shed load with a 429 instead of
		// parking an unbounded line of goroutines behind the session lock.
		m.mu.Unlock()
		return nil, errQueueFull
	}
	s.busy++
	s.lastUsed = m.now()
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		s.busy--
		s.asks++
		s.lastUsed = m.now()
		m.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gm.Ask(ctx, query)
}

// sessionInfo is the /sessions listing row.
type sessionInfo struct {
	ID       string    `json:"session_id"`
	Model    string    `json:"model"`
	Created  time.Time `json:"created_at"`
	LastUsed time.Time `json:"last_used_at"`
	Asks     int64     `json:"asks"`
}

// list snapshots the live sessions, oldest first.
func (m *sessionManager) list() []sessionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]sessionInfo, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, sessionInfo{
			ID: s.ID, Model: s.Model, Created: s.Created,
			LastUsed: s.lastUsed, Asks: s.asks,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Created.Before(out[b].Created) })
	return out
}

// len reports the live-session gauge.
func (m *sessionManager) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// each runs fn over every live session (used by /metrics to merge rows).
func (m *sessionManager) each(fn func(*managedSession)) {
	m.mu.Lock()
	snapshot := make([]*managedSession, 0, len(m.sessions))
	for _, s := range m.sessions {
		snapshot = append(snapshot, s)
	}
	m.mu.Unlock()
	sort.Slice(snapshot, func(a, b int) bool { return snapshot[a].Created.Before(snapshot[b].Created) })
	for _, s := range snapshot {
		fn(s)
	}
}
