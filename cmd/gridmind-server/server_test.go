package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmind"
	"gridmind/internal/llm"
	"gridmind/internal/llm/gateway"
)

// newTestServer assembles a server exactly like main does, with a small
// body cap so the 413 path is testable.
func newTestServer(t *testing.T, maxSessions int) (*server, *httptest.Server) {
	return newTestServerQueue(t, maxSessions, 8, nil)
}

// newTestServerQueue is newTestServer with an explicit per-session queue
// cap and an optional gateway builder; the builder receives the process
// metrics registry so gateway instruments land on the /metrics surface,
// exactly as main wires it.
func newTestServerQueue(t *testing.T, maxSessions, maxQueue int, buildGW func(*gridmind.MetricsRegistry) *gridmind.Gateway) (*server, *httptest.Server) {
	return newTestServerFull(t, maxSessions, maxQueue, "", buildGW)
}

// newTestServerFull adds the spill directory knob.
func newTestServerFull(t *testing.T, maxSessions, maxQueue int, spillDir string, buildGW func(*gridmind.MetricsRegistry) *gridmind.Gateway) (*server, *httptest.Server) {
	t.Helper()
	eng := gridmind.NewEngine()
	met := eng.Metrics()
	var gw *gridmind.Gateway
	if buildGW != nil {
		gw = buildGW(met)
	}
	factory := func(model string) *gridmind.GridMind {
		if gw != nil {
			return gridmind.New(gridmind.Options{Model: model, Client: gw, Engine: eng})
		}
		return gridmind.New(gridmind.Options{Model: model, Engine: eng})
	}
	mgr := newSessionManager(factory, time.Hour, maxSessions, maxQueue, spillDir, met)
	t.Cleanup(mgr.close)
	profile, _ := llm.ProfileByName(gridmind.ModelGPTO3)
	s := &server{
		mgr:      mgr,
		eng:      eng,
		met:      met,
		def:      factory(gridmind.ModelGPTO3),
		sim:      llm.Handler(llm.NewSim(profile)),
		maxBody:  4096,
		gw:       gw,
		maxQueue: maxQueue,
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestCasesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 8)
	resp, err := http.Get(ts.URL + "/cases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cases status %d", resp.StatusCode)
	}
	var rows []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("cases rows = %d, want 5", len(rows))
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, 8)

	// Create.
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{"model": gridmind.ModelGPT5Mini})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %v", resp.StatusCode, out)
	}
	id, _ := out["session_id"].(string)
	if id == "" {
		t.Fatalf("no session_id in %v", out)
	}

	// List shows it.
	lresp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Live     int           `json:"live"`
		Sessions []sessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Live != 1 || len(listing.Sessions) != 1 || listing.Sessions[0].ID != id {
		t.Fatalf("listing %+v", listing)
	}

	// Ask into it.
	aresp, aout := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("ask status %d: %v", aresp.StatusCode, aout)
	}
	if ok, _ := aout["success"].(bool); !ok {
		t.Fatalf("ask failed: %v", aout)
	}

	// Delete, then the id 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	aresp2, aout2 := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if aresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ask on deleted session: status %d, body %v", aresp2.StatusCode, aout2)
	}
	if msg, _ := aout2["error"].(string); msg == "" {
		t.Fatal("error response must be JSON with an error field")
	}
}

func TestSessionErrors(t *testing.T) {
	_, ts := newTestServer(t, 1)

	// Bad model → 400.
	resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{"model": "gpt-nonexistent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model status %d", resp.StatusCode)
	}

	// Capacity → 409.
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create status %d", resp.StatusCode)
	}
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("at-capacity create: status %d, body %v", resp.StatusCode, out)
	}
}

func TestAskValidation(t *testing.T) {
	_, ts := newTestServer(t, 8)

	// Default session (no session_id) keeps the single-tenant contract.
	resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "What is the current network status?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-session ask status %d: %v", resp.StatusCode, out)
	}

	// Empty query → 400.
	if resp, _ := postJSON(t, ts.URL+"/ask", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query status %d", resp.StatusCode)
	}

	// Malformed JSON → 400.
	mresp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", mresp.StatusCode)
	}

	// Oversized body → 413.
	big := map[string]any{"query": strings.Repeat("x", 8192)}
	if resp, _ := postJSON(t, ts.URL+"/ask", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d", resp.StatusCode)
	}

	// Wrong method → 405.
	gresp, err := http.Get(ts.URL + "/ask")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ask status %d", gresp.StatusCode)
	}
}

// fetchMetrics GETs a /metrics variant and returns status, content type
// and body.
func fetchMetrics(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), buf.String()
}

// TestMetricsPrometheus: /metrics serves the process registry in
// Prometheus text format — session gauge, engine artifact counters with
// result labels, and the per-tool latency histograms the coordinator
// registers — with the exposition content type.
func TestMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, 8)
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create failed")
	}
	if resp, _ := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14"}); resp.StatusCode != http.StatusOK {
		t.Fatal("ask failed")
	}
	status, ct, body := fetchMetrics(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q, want Prometheus text exposition", ct)
	}
	for _, want := range []string{
		"# TYPE gridmind_sessions_live gauge",
		"gridmind_sessions_live 1",
		"# TYPE gridmind_engine_ptdf_builds_total counter",
		`gridmind_engine_pristine_lookups_total{result="miss"} 1`,
		`gridmind_engine_opf_context_checkouts_total{result=`,
		`gridmind_engine_base_pf_total{result=`,
		"# TYPE gridmind_tool_latency_seconds histogram",
		"gridmind_tool_latency_seconds_bucket{",
		`gridmind_tool_invocations_total{tool="solve_acopf_case"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestMetricsCSVLegacy: ?format=csv keeps the pre-Prometheus body — the
// interaction CSV plus comment-prefixed engine gauges.
func TestMetricsCSVLegacy(t *testing.T) {
	_, ts := newTestServer(t, 8)
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create failed")
	}
	status, ct, body := fetchMetrics(t, ts.URL+"/metrics?format=csv")
	if status != http.StatusOK {
		t.Fatalf("/metrics?format=csv status %d", status)
	}
	if !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("legacy content type %q, want text/csv", ct)
	}
	for _, gauge := range []string{"# live_sessions 1", "# engine_ptdf_builds", "# engine_opf_context_reuses", "# engine_base_pf_hits"} {
		if !strings.Contains(body, gauge) {
			t.Fatalf("legacy /metrics missing %q in:\n%s", gauge, body)
		}
	}
}

func TestChatCompletionsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 8)
	body := `{"model":"gpt-o3","messages":[{"role":"user","content":"hello"}]}`
	resp, err := http.Post(ts.URL+"/v1/chat/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat completions status %d", resp.StatusCode)
	}
}

func TestIdleExpiry(t *testing.T) {
	s, _ := newTestServer(t, 8)
	ms, err := s.mgr.create(gridmind.ModelGPTO3)
	if err != nil {
		t.Fatal(err)
	}
	// Fast-forward the manager's clock past the TTL and sweep.
	s.mgr.mu.Lock()
	s.mgr.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if _, err := s.mgr.get(ms.ID); err == nil {
		t.Fatal("expired session still resolvable")
	}
}

// TestIdleExpirySkipsBusySessions: a session with an in-flight ask never
// expires, no matter how long the solve runs.
func TestIdleExpirySkipsBusySessions(t *testing.T) {
	s, _ := newTestServer(t, 8)
	ms, err := s.mgr.create(gridmind.ModelGPTO3)
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.mu.Lock()
	ms.busy = 1
	s.mgr.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 0 {
		t.Fatalf("expired %d busy sessions, want 0", n)
	}
	s.mgr.mu.Lock()
	ms.busy = 0
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("idle session survived: expired %d, want 1", n)
	}
}

// TestConcurrentSessionsOneCase is the multi-tenant acceptance hammer:
// K distinct sessions ask about the same case concurrently through one
// engine. Run under -race in CI, it pins the engine + session-manager
// concurrency contract; the engine counters prove the case compiled once.
func TestConcurrentSessionsOneCase(t *testing.T) {
	s, ts := newTestServer(t, 16)
	const K = 8
	ids := make([]string, K)
	for i := range ids {
		resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		ids[i] = out["session_id"].(string)
	}
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("session %s: status %d body %v", id, resp.StatusCode, out)
				return
			}
			if ok, _ := out["success"].(bool); !ok {
				errs[i] = fmt.Errorf("session %s: ask unsuccessful: %v", id, out)
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.eng.Stats()
	if st.PristineMisses != 1 {
		t.Fatalf("case14 loaded %d times across %d sessions, want 1", st.PristineMisses, K)
	}
	if st.YbusBuilds > 1 || st.TopoBuilds > 1 {
		t.Fatalf("structural artifacts rebuilt: %+v", st)
	}
	if st.OPFCreates+st.OPFReuses < K {
		t.Fatalf("KKT pool under-used: creates=%d reuses=%d across %d asks", st.OPFCreates, st.OPFReuses, K)
	}
}

// waitFor polls cond until it holds or the test deadline-ish budget runs
// out; the conditions it guards are local state flips, not wall-clock work.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestHotSessionPileupSheds429: with a per-session queue cap of 1, an ask
// parked behind a slow solve fills the queue and the next ask into the
// same session is shed with 429 + Retry-After instead of joining an
// unbounded goroutine line.
func TestHotSessionPileupSheds429(t *testing.T) {
	s, ts := newTestServerQueue(t, 8, 1, nil)
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	id := out["session_id"].(string)
	ms, err := s.mgr.get(id)
	if err != nil {
		t.Fatal(err)
	}

	// Hold the session's ask lock so request #1 parks in-flight (busy=1).
	ms.mu.Lock()
	unlocked := false
	defer func() {
		if !unlocked {
			ms.mu.Unlock()
		}
	}()
	firstStatus := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(map[string]any{"query": "Solve IEEE 14", "session_id": id})
		resp, err := http.Post(ts.URL+"/ask", "application/json", bytes.NewReader(raw))
		if err != nil {
			firstStatus <- -1
			return
		}
		resp.Body.Close()
		firstStatus <- resp.StatusCode
	}()
	waitFor(t, func() bool {
		s.mgr.mu.Lock()
		defer s.mgr.mu.Unlock()
		return ms.busy == 1
	})

	// Queue full: the pileup request bounces immediately with a hint.
	resp2, out2 := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pileup ask: status %d body %v, want 429", resp2.StatusCode, out2)
	}
	if ra := resp2.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("pileup ask Retry-After = %q, want \"1\"", ra)
	}

	// Release the lock; the parked ask completes normally.
	unlocked = true
	ms.mu.Unlock()
	if st := <-firstStatus; st != http.StatusOK {
		t.Fatalf("parked ask finished with status %d, want 200", st)
	}
}

// TestDefaultSessionQueueCap: the session-less /ask path enforces the
// same in-flight bound as managed sessions.
func TestDefaultSessionQueueCap(t *testing.T) {
	s, ts := newTestServerQueue(t, 8, 1, nil)

	s.defMu.Lock()
	unlocked := false
	defer func() {
		if !unlocked {
			s.defMu.Unlock()
		}
	}()
	firstStatus := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(map[string]any{"query": "What is the current network status?"})
		resp, err := http.Post(ts.URL+"/ask", "application/json", bytes.NewReader(raw))
		if err != nil {
			firstStatus <- -1
			return
		}
		resp.Body.Close()
		firstStatus <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.defBusy.Load() == 1 })

	resp, _ := postJSON(t, ts.URL+"/ask", map[string]any{"query": "What is the current network status?"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("default-session pileup: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}

	unlocked = true
	s.defMu.Unlock()
	if st := <-firstStatus; st != http.StatusOK {
		t.Fatalf("parked default ask finished with status %d, want 200", st)
	}
}

// outageBackend forwards to the sim until down is set, then answers 503.
type outageBackend struct {
	inner llm.Client
	down  atomic.Bool
}

func (o *outageBackend) Model() string { return o.inner.Model() }

func (o *outageBackend) Complete(ctx context.Context, req *llm.Request) (*llm.Response, error) {
	if o.down.Load() {
		return nil, &llm.StatusError{Code: http.StatusServiceUnavailable, Msg: "deployment offline"}
	}
	return o.inner.Complete(ctx, req)
}

// TestGatewayOutageReturns503AndRecovers is the serving-degradation
// acceptance path: every gateway deployment's breaker open → /ask answers
// 503 + Retry-After; after the backend heals and the breaker cools, the
// SAME session serves again, and /metrics carries the gateway gauges.
func TestGatewayOutageReturns503AndRecovers(t *testing.T) {
	profile, _ := llm.ProfileByName(gridmind.ModelGPTO3)
	backend := &outageBackend{inner: llm.NewSim(profile)}
	backend.down.Store(true)

	var clkMu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	_, ts := newTestServerQueue(t, 8, 8, func(met *gridmind.MetricsRegistry) *gridmind.Gateway {
		gw, err := gridmind.NewGateway(
			[]gridmind.GatewayDeployment{{Name: "only", Client: backend}},
			gridmind.GatewayConfig{
				Breaker: gateway.BreakerConfig{
					Window: 4, MinSamples: 1, FailureRatio: 0.5,
					OpenTimeout: 15 * time.Second, HalfOpenSuccesses: 1,
				},
				Retry: gateway.RetryConfig{
					MaxAttempts: 2, BaseBackoff: time.Millisecond,
					MaxBackoff: 2 * time.Millisecond, AttemptTimeout: -1,
				},
				Now:     func() time.Time { clkMu.Lock(); defer clkMu.Unlock(); return now },
				Metrics: met,
			})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(gw.Close)
		return gw
	})

	// Outage: the first failure trips the breaker (MinSamples 1), the
	// retry round finds every deployment open → ErrUnavailable → 503.
	resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("outage ask: status %d body %v, want 503", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "15" {
		t.Fatalf("outage Retry-After = %q, want \"15\"", ra)
	}

	// Heal the backend and cool the breaker; the half-open probe succeeds
	// and the same (default) session completes the solve it was asked for.
	backend.down.Store(false)
	clkMu.Lock()
	now = now.Add(16 * time.Second)
	clkMu.Unlock()
	resp2, out2 := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("recovered ask: status %d body %v, want 200", resp2.StatusCode, out2)
	}
	if ok, _ := out2["success"].(bool); !ok {
		t.Fatalf("recovered ask unsuccessful: %v", out2)
	}

	// The gateway's instruments ride the Prometheus /metrics surface:
	// request/retry counters and the per-deployment breaker-state gauge
	// (0 = closed again after recovery).
	_, _, body := fetchMetrics(t, ts.URL+"/metrics")
	for _, want := range []string{
		`gridmind_gateway_requests_total{gateway="gateway"}`,
		`gridmind_gateway_retries_total{gateway="gateway"}`,
		`gridmind_gateway_breaker_state{deployment="only",gateway="gateway"} 0`,
		`gridmind_gateway_deployment_attempts_total{deployment="only",gateway="gateway"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestSessionSpillRestore is the spill-to-disk acceptance path over
// httptest: a session accumulates state (a solve plus one modification),
// idle-expires into the spill directory, and the next ask on the same id
// transparently restores it — the reply still knows about the
// modification, the spill file is consumed, and the lifecycle counters
// land on /metrics.
func TestSessionSpillRestore(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServerFull(t, 8, 8, dir, nil)

	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	id := out["session_id"].(string)
	for _, q := range []string{"Solve IEEE 14", "Increase the load at bus 9 to 45 MW"} {
		resp, aout := postJSON(t, ts.URL+"/ask", map[string]any{"query": q, "session_id": id})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ask %q status %d: %v", q, resp.StatusCode, aout)
		}
	}

	// Fast-forward past the TTL: the sweep spills instead of dropping.
	var offset atomic.Int64
	offset.Store(int64(2 * time.Hour))
	s.mgr.mu.Lock()
	s.mgr.now = func() time.Time { return time.Now().Add(time.Duration(offset.Load())) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if s.mgr.len() != 0 {
		t.Fatal("spilled session still in the live table")
	}
	spillFile := filepath.Join(dir, id+".json")
	if _, err := os.Stat(spillFile); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// Same id, next ask: transparent restore with the diff intact.
	aresp, aout := postJSON(t, ts.URL+"/ask", map[string]any{"query": "What is the current network status?", "session_id": id})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore ask status %d: %v", aresp.StatusCode, aout)
	}
	reply, _ := aout["reply"].(string)
	if !strings.Contains(reply, "1 modification") {
		t.Fatalf("restored session lost its diff: %q", reply)
	}
	if _, err := os.Stat(spillFile); !os.IsNotExist(err) {
		t.Fatalf("spill file not consumed by restore: %v", err)
	}
	ms, err := s.mgr.get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.gm.Session().Diffs()) != 1 {
		t.Fatalf("restored diffs %d, want 1", len(ms.gm.Session().Diffs()))
	}

	_, _, body := fetchMetrics(t, ts.URL+"/metrics")
	for _, want := range []string{
		"gridmind_sessions_spilled_total 1",
		"gridmind_sessions_restored_total 1",
		"gridmind_sessions_expired_total 1",
		"gridmind_sessions_restore_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// DELETE on a spilled id removes the file too. The restore refreshed
	// the idle clock, so push the fake clock past another TTL first.
	offset.Store(int64(5 * time.Hour))
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("re-expire count %d, want 1", n)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete spilled session status %d", dresp.StatusCode)
	}
	if _, err := os.Stat(spillFile); !os.IsNotExist(err) {
		t.Fatal("delete left the spill file behind")
	}
	if resp, _ := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ask on deleted spilled session: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionTouchRestores: POST /sessions/{id} is the explicit restore
// surface — it revives a spilled session without routing a query through
// it, and 404s on ids that exist nowhere.
func TestSessionTouchRestores(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServerFull(t, 8, 8, dir, nil)
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	id := out["session_id"].(string)

	s.mgr.mu.Lock()
	s.mgr.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}

	tresp, tout := postJSON(t, ts.URL+"/sessions/"+id, map[string]any{})
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("touch status %d: %v", tresp.StatusCode, tout)
	}
	if got, _ := tout["session_id"].(string); got != id {
		t.Fatalf("touch returned id %q, want %q", got, id)
	}
	if s.mgr.len() != 1 {
		t.Fatal("touched session not back in the live table")
	}
	if resp, _ := postJSON(t, ts.URL+"/sessions/sess-unknown", map[string]any{}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("touch on unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentScrapeSpillAsk is the observability/spill race hammer,
// run under -race in CI: 8 sessions ask repeatedly while a fake-clock
// janitor keeps spilling every idle session and a scraper hammers
// WritePrometheus. Asks must never 404 — restore-on-touch makes spilling
// invisible — and the scrape must stay internally consistent.
func TestConcurrentScrapeSpillAsk(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServerFull(t, 16, 8, dir, nil)

	const K = 8
	ids := make([]string, K)
	for i := range ids {
		resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		ids[i] = out["session_id"].(string)
	}

	// The manager clock jumps 2 TTLs forward on every sweep, so any
	// session idle since the previous sweep expires again — repeated
	// spill/restore cycles, not just one.
	var offset atomic.Int64
	s.mgr.mu.Lock()
	s.mgr.now = func() time.Time { return time.Now().Add(time.Duration(offset.Load())) }
	s.mgr.mu.Unlock()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // janitor hammer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			offset.Add(int64(2 * time.Hour))
			s.mgr.expireIdle()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // scraper hammer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	errs := make([]error, K)
	var askers sync.WaitGroup
	for i, id := range ids {
		askers.Add(1)
		go func(i int, id string) {
			defer askers.Done()
			for n := 0; n < 3; n++ {
				resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
				if resp.StatusCode != http.StatusOK {
					errs[i] = fmt.Errorf("session %s ask %d: status %d body %v", id, n, resp.StatusCode, out)
					return
				}
			}
		}(i, id)
	}
	askers.Wait()
	close(stop)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The final scrape must hold the histogram invariant even after all
	// that churn: +Inf bucket == observation count.
	_, _, body := fetchMetrics(t, ts.URL+"/metrics")
	if !strings.Contains(body, "gridmind_sessions_spilled_total") {
		t.Fatalf("no spill counters on /metrics:\n%s", body)
	}
}
