package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridmind"
	"gridmind/internal/llm"
)

// newTestServer assembles a server exactly like main does, with a small
// body cap so the 413 path is testable.
func newTestServer(t *testing.T, maxSessions int) (*server, *httptest.Server) {
	t.Helper()
	eng := gridmind.NewEngine()
	factory := func(model string) *gridmind.GridMind {
		return gridmind.New(gridmind.Options{Model: model, Engine: eng})
	}
	mgr := newSessionManager(factory, time.Hour, maxSessions)
	t.Cleanup(mgr.close)
	profile, _ := llm.ProfileByName(gridmind.ModelGPTO3)
	s := &server{
		mgr:     mgr,
		eng:     eng,
		def:     factory(gridmind.ModelGPTO3),
		sim:     llm.Handler(llm.NewSim(profile)),
		maxBody: 4096,
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestCasesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 8)
	resp, err := http.Get(ts.URL + "/cases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cases status %d", resp.StatusCode)
	}
	var rows []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("cases rows = %d, want 5", len(rows))
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, 8)

	// Create.
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{"model": gridmind.ModelGPT5Mini})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %v", resp.StatusCode, out)
	}
	id, _ := out["session_id"].(string)
	if id == "" {
		t.Fatalf("no session_id in %v", out)
	}

	// List shows it.
	lresp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Live     int           `json:"live"`
		Sessions []sessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Live != 1 || len(listing.Sessions) != 1 || listing.Sessions[0].ID != id {
		t.Fatalf("listing %+v", listing)
	}

	// Ask into it.
	aresp, aout := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("ask status %d: %v", aresp.StatusCode, aout)
	}
	if ok, _ := aout["success"].(bool); !ok {
		t.Fatalf("ask failed: %v", aout)
	}

	// Delete, then the id 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	aresp2, aout2 := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if aresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ask on deleted session: status %d, body %v", aresp2.StatusCode, aout2)
	}
	if msg, _ := aout2["error"].(string); msg == "" {
		t.Fatal("error response must be JSON with an error field")
	}
}

func TestSessionErrors(t *testing.T) {
	_, ts := newTestServer(t, 1)

	// Bad model → 400.
	resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{"model": "gpt-nonexistent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model status %d", resp.StatusCode)
	}

	// Capacity → 409.
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create status %d", resp.StatusCode)
	}
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("at-capacity create: status %d, body %v", resp.StatusCode, out)
	}
}

func TestAskValidation(t *testing.T) {
	_, ts := newTestServer(t, 8)

	// Default session (no session_id) keeps the single-tenant contract.
	resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "What is the current network status?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-session ask status %d: %v", resp.StatusCode, out)
	}

	// Empty query → 400.
	if resp, _ := postJSON(t, ts.URL+"/ask", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query status %d", resp.StatusCode)
	}

	// Malformed JSON → 400.
	mresp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", mresp.StatusCode)
	}

	// Oversized body → 413.
	big := map[string]any{"query": strings.Repeat("x", 8192)}
	if resp, _ := postJSON(t, ts.URL+"/ask", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d", resp.StatusCode)
	}

	// Wrong method → 405.
	gresp, err := http.Get(ts.URL + "/ask")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ask status %d", gresp.StatusCode)
	}
}

func TestMetricsGauges(t *testing.T) {
	_, ts := newTestServer(t, 8)
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, gauge := range []string{"# live_sessions 1", "# engine_ptdf_builds", "# engine_opf_context_reuses", "# engine_base_pf_hits"} {
		if !strings.Contains(body, gauge) {
			t.Fatalf("/metrics missing %q in:\n%s", gauge, body)
		}
	}
}

func TestChatCompletionsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 8)
	body := `{"model":"gpt-o3","messages":[{"role":"user","content":"hello"}]}`
	resp, err := http.Post(ts.URL+"/v1/chat/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat completions status %d", resp.StatusCode)
	}
}

func TestIdleExpiry(t *testing.T) {
	s, _ := newTestServer(t, 8)
	ms, err := s.mgr.create(gridmind.ModelGPTO3)
	if err != nil {
		t.Fatal(err)
	}
	// Fast-forward the manager's clock past the TTL and sweep.
	s.mgr.mu.Lock()
	s.mgr.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if _, err := s.mgr.get(ms.ID); err == nil {
		t.Fatal("expired session still resolvable")
	}
}

// TestIdleExpirySkipsBusySessions: a session with an in-flight ask never
// expires, no matter how long the solve runs.
func TestIdleExpirySkipsBusySessions(t *testing.T) {
	s, _ := newTestServer(t, 8)
	ms, err := s.mgr.create(gridmind.ModelGPTO3)
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.mu.Lock()
	ms.busy = 1
	s.mgr.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 0 {
		t.Fatalf("expired %d busy sessions, want 0", n)
	}
	s.mgr.mu.Lock()
	ms.busy = 0
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("idle session survived: expired %d, want 1", n)
	}
}

// TestConcurrentSessionsOneCase is the multi-tenant acceptance hammer:
// K distinct sessions ask about the same case concurrently through one
// engine. Run under -race in CI, it pins the engine + session-manager
// concurrency contract; the engine counters prove the case compiled once.
func TestConcurrentSessionsOneCase(t *testing.T) {
	s, ts := newTestServer(t, 16)
	const K = 8
	ids := make([]string, K)
	for i := range ids {
		resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		ids[i] = out["session_id"].(string)
	}
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("session %s: status %d body %v", id, resp.StatusCode, out)
				return
			}
			if ok, _ := out["success"].(bool); !ok {
				errs[i] = fmt.Errorf("session %s: ask unsuccessful: %v", id, out)
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.eng.Stats()
	if st.PristineMisses != 1 {
		t.Fatalf("case14 loaded %d times across %d sessions, want 1", st.PristineMisses, K)
	}
	if st.YbusBuilds > 1 || st.TopoBuilds > 1 {
		t.Fatalf("structural artifacts rebuilt: %+v", st)
	}
	if st.OPFCreates+st.OPFReuses < K {
		t.Fatalf("KKT pool under-used: creates=%d reuses=%d across %d asks", st.OPFCreates, st.OPFReuses, K)
	}
}
