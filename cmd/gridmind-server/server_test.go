package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmind"
	"gridmind/internal/llm"
	"gridmind/internal/llm/gateway"
)

// newTestServer assembles a server exactly like main does, with a small
// body cap so the 413 path is testable.
func newTestServer(t *testing.T, maxSessions int) (*server, *httptest.Server) {
	return newTestServerQueue(t, maxSessions, 8, nil)
}

// newTestServerQueue is newTestServer with an explicit per-session queue
// cap and an optional shared gateway riding under every session.
func newTestServerQueue(t *testing.T, maxSessions, maxQueue int, gw *gridmind.Gateway) (*server, *httptest.Server) {
	t.Helper()
	eng := gridmind.NewEngine()
	factory := func(model string) *gridmind.GridMind {
		if gw != nil {
			return gridmind.New(gridmind.Options{Model: model, Client: gw, Engine: eng})
		}
		return gridmind.New(gridmind.Options{Model: model, Engine: eng})
	}
	mgr := newSessionManager(factory, time.Hour, maxSessions, maxQueue)
	t.Cleanup(mgr.close)
	profile, _ := llm.ProfileByName(gridmind.ModelGPTO3)
	s := &server{
		mgr:      mgr,
		eng:      eng,
		def:      factory(gridmind.ModelGPTO3),
		sim:      llm.Handler(llm.NewSim(profile)),
		maxBody:  4096,
		gw:       gw,
		maxQueue: maxQueue,
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestCasesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 8)
	resp, err := http.Get(ts.URL + "/cases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cases status %d", resp.StatusCode)
	}
	var rows []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("cases rows = %d, want 5", len(rows))
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, 8)

	// Create.
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{"model": gridmind.ModelGPT5Mini})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %v", resp.StatusCode, out)
	}
	id, _ := out["session_id"].(string)
	if id == "" {
		t.Fatalf("no session_id in %v", out)
	}

	// List shows it.
	lresp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Live     int           `json:"live"`
		Sessions []sessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Live != 1 || len(listing.Sessions) != 1 || listing.Sessions[0].ID != id {
		t.Fatalf("listing %+v", listing)
	}

	// Ask into it.
	aresp, aout := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("ask status %d: %v", aresp.StatusCode, aout)
	}
	if ok, _ := aout["success"].(bool); !ok {
		t.Fatalf("ask failed: %v", aout)
	}

	// Delete, then the id 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	aresp2, aout2 := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if aresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ask on deleted session: status %d, body %v", aresp2.StatusCode, aout2)
	}
	if msg, _ := aout2["error"].(string); msg == "" {
		t.Fatal("error response must be JSON with an error field")
	}
}

func TestSessionErrors(t *testing.T) {
	_, ts := newTestServer(t, 1)

	// Bad model → 400.
	resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{"model": "gpt-nonexistent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model status %d", resp.StatusCode)
	}

	// Capacity → 409.
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create status %d", resp.StatusCode)
	}
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("at-capacity create: status %d, body %v", resp.StatusCode, out)
	}
}

func TestAskValidation(t *testing.T) {
	_, ts := newTestServer(t, 8)

	// Default session (no session_id) keeps the single-tenant contract.
	resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "What is the current network status?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-session ask status %d: %v", resp.StatusCode, out)
	}

	// Empty query → 400.
	if resp, _ := postJSON(t, ts.URL+"/ask", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query status %d", resp.StatusCode)
	}

	// Malformed JSON → 400.
	mresp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", mresp.StatusCode)
	}

	// Oversized body → 413.
	big := map[string]any{"query": strings.Repeat("x", 8192)}
	if resp, _ := postJSON(t, ts.URL+"/ask", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d", resp.StatusCode)
	}

	// Wrong method → 405.
	gresp, err := http.Get(ts.URL + "/ask")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ask status %d", gresp.StatusCode)
	}
}

func TestMetricsGauges(t *testing.T) {
	_, ts := newTestServer(t, 8)
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, gauge := range []string{"# live_sessions 1", "# engine_ptdf_builds", "# engine_opf_context_reuses", "# engine_base_pf_hits"} {
		if !strings.Contains(body, gauge) {
			t.Fatalf("/metrics missing %q in:\n%s", gauge, body)
		}
	}
}

func TestChatCompletionsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 8)
	body := `{"model":"gpt-o3","messages":[{"role":"user","content":"hello"}]}`
	resp, err := http.Post(ts.URL+"/v1/chat/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat completions status %d", resp.StatusCode)
	}
}

func TestIdleExpiry(t *testing.T) {
	s, _ := newTestServer(t, 8)
	ms, err := s.mgr.create(gridmind.ModelGPTO3)
	if err != nil {
		t.Fatal(err)
	}
	// Fast-forward the manager's clock past the TTL and sweep.
	s.mgr.mu.Lock()
	s.mgr.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if _, err := s.mgr.get(ms.ID); err == nil {
		t.Fatal("expired session still resolvable")
	}
}

// TestIdleExpirySkipsBusySessions: a session with an in-flight ask never
// expires, no matter how long the solve runs.
func TestIdleExpirySkipsBusySessions(t *testing.T) {
	s, _ := newTestServer(t, 8)
	ms, err := s.mgr.create(gridmind.ModelGPTO3)
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.mu.Lock()
	ms.busy = 1
	s.mgr.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 0 {
		t.Fatalf("expired %d busy sessions, want 0", n)
	}
	s.mgr.mu.Lock()
	ms.busy = 0
	s.mgr.mu.Unlock()
	if n := s.mgr.expireIdle(); n != 1 {
		t.Fatalf("idle session survived: expired %d, want 1", n)
	}
}

// TestConcurrentSessionsOneCase is the multi-tenant acceptance hammer:
// K distinct sessions ask about the same case concurrently through one
// engine. Run under -race in CI, it pins the engine + session-manager
// concurrency contract; the engine counters prove the case compiled once.
func TestConcurrentSessionsOneCase(t *testing.T) {
	s, ts := newTestServer(t, 16)
	const K = 8
	ids := make([]string, K)
	for i := range ids {
		resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		ids[i] = out["session_id"].(string)
	}
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("session %s: status %d body %v", id, resp.StatusCode, out)
				return
			}
			if ok, _ := out["success"].(bool); !ok {
				errs[i] = fmt.Errorf("session %s: ask unsuccessful: %v", id, out)
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.eng.Stats()
	if st.PristineMisses != 1 {
		t.Fatalf("case14 loaded %d times across %d sessions, want 1", st.PristineMisses, K)
	}
	if st.YbusBuilds > 1 || st.TopoBuilds > 1 {
		t.Fatalf("structural artifacts rebuilt: %+v", st)
	}
	if st.OPFCreates+st.OPFReuses < K {
		t.Fatalf("KKT pool under-used: creates=%d reuses=%d across %d asks", st.OPFCreates, st.OPFReuses, K)
	}
}

// waitFor polls cond until it holds or the test deadline-ish budget runs
// out; the conditions it guards are local state flips, not wall-clock work.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestHotSessionPileupSheds429: with a per-session queue cap of 1, an ask
// parked behind a slow solve fills the queue and the next ask into the
// same session is shed with 429 + Retry-After instead of joining an
// unbounded goroutine line.
func TestHotSessionPileupSheds429(t *testing.T) {
	s, ts := newTestServerQueue(t, 8, 1, nil)
	resp, out := postJSON(t, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	id := out["session_id"].(string)
	ms, err := s.mgr.get(id)
	if err != nil {
		t.Fatal(err)
	}

	// Hold the session's ask lock so request #1 parks in-flight (busy=1).
	ms.mu.Lock()
	unlocked := false
	defer func() {
		if !unlocked {
			ms.mu.Unlock()
		}
	}()
	firstStatus := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(map[string]any{"query": "Solve IEEE 14", "session_id": id})
		resp, err := http.Post(ts.URL+"/ask", "application/json", bytes.NewReader(raw))
		if err != nil {
			firstStatus <- -1
			return
		}
		resp.Body.Close()
		firstStatus <- resp.StatusCode
	}()
	waitFor(t, func() bool {
		s.mgr.mu.Lock()
		defer s.mgr.mu.Unlock()
		return ms.busy == 1
	})

	// Queue full: the pileup request bounces immediately with a hint.
	resp2, out2 := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14", "session_id": id})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pileup ask: status %d body %v, want 429", resp2.StatusCode, out2)
	}
	if ra := resp2.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("pileup ask Retry-After = %q, want \"1\"", ra)
	}

	// Release the lock; the parked ask completes normally.
	unlocked = true
	ms.mu.Unlock()
	if st := <-firstStatus; st != http.StatusOK {
		t.Fatalf("parked ask finished with status %d, want 200", st)
	}
}

// TestDefaultSessionQueueCap: the session-less /ask path enforces the
// same in-flight bound as managed sessions.
func TestDefaultSessionQueueCap(t *testing.T) {
	s, ts := newTestServerQueue(t, 8, 1, nil)

	s.defMu.Lock()
	unlocked := false
	defer func() {
		if !unlocked {
			s.defMu.Unlock()
		}
	}()
	firstStatus := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(map[string]any{"query": "What is the current network status?"})
		resp, err := http.Post(ts.URL+"/ask", "application/json", bytes.NewReader(raw))
		if err != nil {
			firstStatus <- -1
			return
		}
		resp.Body.Close()
		firstStatus <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.defBusy.Load() == 1 })

	resp, _ := postJSON(t, ts.URL+"/ask", map[string]any{"query": "What is the current network status?"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("default-session pileup: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}

	unlocked = true
	s.defMu.Unlock()
	if st := <-firstStatus; st != http.StatusOK {
		t.Fatalf("parked default ask finished with status %d, want 200", st)
	}
}

// outageBackend forwards to the sim until down is set, then answers 503.
type outageBackend struct {
	inner llm.Client
	down  atomic.Bool
}

func (o *outageBackend) Model() string { return o.inner.Model() }

func (o *outageBackend) Complete(ctx context.Context, req *llm.Request) (*llm.Response, error) {
	if o.down.Load() {
		return nil, &llm.StatusError{Code: http.StatusServiceUnavailable, Msg: "deployment offline"}
	}
	return o.inner.Complete(ctx, req)
}

// TestGatewayOutageReturns503AndRecovers is the serving-degradation
// acceptance path: every gateway deployment's breaker open → /ask answers
// 503 + Retry-After; after the backend heals and the breaker cools, the
// SAME session serves again, and /metrics carries the gateway gauges.
func TestGatewayOutageReturns503AndRecovers(t *testing.T) {
	profile, _ := llm.ProfileByName(gridmind.ModelGPTO3)
	backend := &outageBackend{inner: llm.NewSim(profile)}
	backend.down.Store(true)

	var clkMu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	gw, err := gridmind.NewGateway(
		[]gridmind.GatewayDeployment{{Name: "only", Client: backend}},
		gridmind.GatewayConfig{
			Breaker: gateway.BreakerConfig{
				Window: 4, MinSamples: 1, FailureRatio: 0.5,
				OpenTimeout: 15 * time.Second, HalfOpenSuccesses: 1,
			},
			Retry: gateway.RetryConfig{
				MaxAttempts: 2, BaseBackoff: time.Millisecond,
				MaxBackoff: 2 * time.Millisecond, AttemptTimeout: -1,
			},
			Now: func() time.Time { clkMu.Lock(); defer clkMu.Unlock(); return now },
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	_, ts := newTestServerQueue(t, 8, 8, gw)

	// Outage: the first failure trips the breaker (MinSamples 1), the
	// retry round finds every deployment open → ErrUnavailable → 503.
	resp, out := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("outage ask: status %d body %v, want 503", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "15" {
		t.Fatalf("outage Retry-After = %q, want \"15\"", ra)
	}

	// Heal the backend and cool the breaker; the half-open probe succeeds
	// and the same (default) session completes the solve it was asked for.
	backend.down.Store(false)
	clkMu.Lock()
	now = now.Add(16 * time.Second)
	clkMu.Unlock()
	resp2, out2 := postJSON(t, ts.URL+"/ask", map[string]any{"query": "Solve IEEE 14"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("recovered ask: status %d body %v, want 200", resp2.StatusCode, out2)
	}
	if ok, _ := out2["success"].(bool); !ok {
		t.Fatalf("recovered ask unsuccessful: %v", out2)
	}

	// The gateway's counters ride the /metrics surface.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, gauge := range []string{"# gateway_requests", "# gateway_retries", "# gateway_deployment only state=closed"} {
		if !strings.Contains(body, gauge) {
			t.Fatalf("/metrics missing %q in:\n%s", gauge, body)
		}
	}
}
