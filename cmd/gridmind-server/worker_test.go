package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gridmind"
	"gridmind/internal/fleet"
)

// TestWorkerModeSurface drives the worker-mode routes end to end: health
// probe, a sharded sweep through a real coordinator, and the Prometheus
// exposition carrying both engine and fleet-worker families.
func TestWorkerModeSurface(t *testing.T) {
	eng := gridmind.NewEngine()
	srv := httptest.NewServer(workerRoutes("w-test", 0, eng, nil, eng.Metrics()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	coord, err := fleet.NewCoordinator(fleet.Config{Workers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := eng.Pristine("case30")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := coord.SweepN1(context.Background(), "worker-mode-smoke", "case30", n.InServiceBranches(), fleet.SweepOptions{DCScreen: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Outages) != len(n.InServiceBranches()) {
		t.Fatalf("sweep returned %d outages, want %d", len(rs.Outages), len(n.InServiceBranches()))
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := make([]byte, 1<<20)
	nb, _ := mresp.Body.Read(buf)
	body := string(buf[:nb])
	for _, family := range []string{"gridmind_fleet_worker_shards_total", "gridmind_engine_artifact_store_loads_total"} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics missing family %s", family)
		}
	}
}

// TestKillAfterNPassthrough checks the death hook is inert below its
// threshold and for non-shard traffic (the exit path itself is exercised
// by the CI fleet-smoke job, where a real process dies mid-sweep).
func TestKillAfterNPassthrough(t *testing.T) {
	var hits int
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) { hits++ })
	h := killAfterN(3, inner)
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodPost, "/shard", nil)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	// Health and metrics probes never count against the budget.
	for i := 0; i < 5; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))
	}
	if hits != 8 {
		t.Fatalf("handler saw %d requests, want 8", hits)
	}
	// Disabled hook passes traffic straight through.
	h0 := killAfterN(0, inner)
	for i := 0; i < 4; i++ {
		h0.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/shard", nil))
	}
	if hits != 12 {
		t.Fatalf("handler saw %d requests, want 12", hits)
	}
}
