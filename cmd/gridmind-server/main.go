// Command gridmind-server exposes GridMind over HTTP as a multi-session
// serving engine: a session manager routes each conversation to its own
// shared-context session while every session draws compiled artifacts
// (pristine cases, Ybus/topology, PTDF/LODF memos, interior-point KKT
// patterns, sweep solver contexts) from ONE process-wide engine, so N
// sessions on the same case pay for one compilation.
//
// Endpoints:
//
//	POST   /sessions              {"model": "..."}                → create a session
//	GET    /sessions                                              → live-session listing
//	DELETE /sessions/{id}                                         → drop a session
//	POST   /ask                   {"query": "...", "session_id"?} → coordinated reply
//	GET    /cases                                                 → Table 2 inventory
//	GET    /metrics                                               → CSV + engine gauges
//	POST   /v1/chat/completions   chat-completions dialect        → simulated backend
//
// /ask without a session_id uses a shared default session (the original
// single-tenant contract). Sessions idle past -session-ttl expire. The
// server drains gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridmind"
	"gridmind/internal/llm"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", gridmind.ModelGPTO3, "simulated model profile for the default session")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle session expiry (0 disables)")
	maxSessions := flag.Int("max-sessions", 1024, "live session cap (0 = unlimited)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	flag.Parse()
	if err := gridmind.ValidateModel(*modelName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	eng := gridmind.NewEngine()
	factory := func(model string) *gridmind.GridMind {
		return gridmind.New(gridmind.Options{Model: model, Engine: eng})
	}
	mgr := newSessionManager(factory, *sessionTTL, *maxSessions)
	defer mgr.close()

	profile, _ := llm.ProfileByName(*modelName)
	srv := &server{
		mgr:     mgr,
		eng:     eng,
		def:     factory(*modelName),
		sim:     llm.Handler(llm.NewSim(profile)),
		maxBody: *maxBody,
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: SIGINT/SIGTERM stop accepting and drain in-flight
	// requests instead of dying mid-solve under a bare log.Fatal.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("gridmind-server listening on %s (default model %s, session ttl %s, max sessions %d)",
		*addr, *modelName, *sessionTTL, *maxSessions)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("gridmind-server: shutdown signal received, draining")
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer shutCancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("gridmind-server: forced shutdown: %v", err)
		}
	}
}
