// Command gridmind-server exposes GridMind over HTTP: a JSON ask API for
// the multi-agent pipeline and a chat-completions endpoint that serves
// the simulated LLM backends (so external agent frameworks can test
// against GridMind's model profiles).
//
// Endpoints:
//
//	POST /ask                  {"query": "..."}            → coordinated reply
//	GET  /cases                                            → Table 2 inventory
//	GET  /metrics                                          → instrumentation CSV
//	POST /v1/chat/completions  chat-completions dialect    → simulated backend
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"gridmind"
	"gridmind/internal/llm"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", gridmind.ModelGPTO3, "simulated model profile")
	flag.Parse()
	if err := gridmind.ValidateModel(*modelName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	gm := gridmind.New(gridmind.Options{Model: *modelName})
	profile, _ := llm.ProfileByName(*modelName)

	mux := http.NewServeMux()
	mux.HandleFunc("/ask", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var in struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil || in.Query == "" {
			http.Error(w, "body must be {\"query\": \"...\"}", http.StatusBadRequest)
			return
		}
		ex, err := gm.Ask(r.Context(), in.Query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"reply":     ex.Reply,
			"success":   ex.Success,
			"turns":     len(ex.Turns),
			"latency_s": ex.Latency.Seconds(),
			"workflow":  ex.Steps,
		})
	})
	mux.HandleFunc("/cases", func(w http.ResponseWriter, r *http.Request) {
		rows, err := gridmind.CaseSummaries()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rows)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		_ = gm.WriteMetricsCSV(w)
	})
	mux.Handle("/v1/chat/completions", llm.Handler(llm.NewSim(profile)))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("gridmind-server listening on %s (model %s)", *addr, *modelName)
	log.Fatal(srv.ListenAndServe())
}
