// Command gridmind-server exposes GridMind over HTTP as a multi-session
// serving engine: a session manager routes each conversation to its own
// shared-context session while every session draws compiled artifacts
// (pristine cases, Ybus/topology, PTDF/LODF memos, interior-point KKT
// patterns, sweep solver contexts) from ONE process-wide engine, so N
// sessions on the same case pay for one compilation.
//
// Endpoints:
//
//	POST   /sessions              {"model": "..."}                → create a session
//	GET    /sessions                                              → live-session listing
//	DELETE /sessions/{id}                                         → drop a session (live or spilled)
//	POST   /sessions/{id}                                         → touch a session, restoring it from spill if needed
//	POST   /ask                   {"query": "...", "session_id"?} → coordinated reply
//	GET    /cases                                                 → Table 2 inventory
//	GET    /metrics                                               → Prometheus text exposition (?format=csv = legacy CSV)
//	POST   /v1/chat/completions   chat-completions dialect        → simulated backend
//
// /ask without a session_id uses a shared default session (the original
// single-tenant contract). Sessions idle past -session-ttl expire; with
// -spill-dir they spill to disk instead and transparently restore on the
// next ask, so mostly-idle users stop holding RAM. The server drains
// gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gridmind"
	"gridmind/internal/llm"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", gridmind.ModelGPTO3, "simulated model profile for the default session")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle session expiry (0 disables)")
	spillDir := flag.String("spill-dir", "", "directory for idle-expired session spill files; expired sessions persist there and restore on next touch (empty disables)")
	maxSessions := flag.Int("max-sessions", 1024, "live session cap (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 8, "in-flight ask cap per session; overflow gets 429 + Retry-After (0 = unbounded)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	gatewaySpec := flag.String("gateway", "",
		`comma-separated LLM deployments "name=model-or-URL[@weight]"; when set, all sessions ride one resilient gateway (e.g. "primary=https://host/v1/chat/completions@3,backup=gpt-5-mini")`)
	gatewayStrategy := flag.String("gateway-strategy", "priority", "gateway routing: priority, round-robin, least-latency or weighted")
	gatewayHealth := flag.Duration("gateway-health", 30*time.Second, "gateway background health-probe interval (0 disables)")
	workerMode := flag.Bool("worker", false, "serve as a contingency-fleet worker (POST /shard, GET /healthz, GET /metrics) instead of the session server")
	workerID := flag.String("worker-id", "", "worker name reported in shard responses (default: the listen address)")
	artifactDir := flag.String("artifact-dir", "", "persistent compiled-artifact store directory; a worker warms each case from it (skipping Ybus/topology/PTDF/ordering compiles) and persists cold compiles back (empty disables)")
	workerKillAfter := flag.Int("worker-kill-after", 0, "TEST HOOK: exit the worker process before answering shard request N+1, simulating mid-sweep death (0 disables)")
	flag.Parse()
	if err := gridmind.ValidateModel(*modelName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The engine comes first: its obs registry is the process-wide metrics
	// surface the gateway, manager and every session publish on.
	eng := gridmind.NewEngine()
	met := eng.Metrics()

	if *workerMode {
		runWorker(*addr, *workerID, *artifactDir, *workerKillAfter, eng, met)
		return
	}

	var gw *gridmind.Gateway
	if *gatewaySpec != "" {
		var err error
		gw, err = buildGateway(*gatewaySpec, *gatewayStrategy, *gatewayHealth, met)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer gw.Close()
	}

	factory := func(model string) *gridmind.GridMind {
		if gw != nil {
			return gridmind.New(gridmind.Options{Model: model, Client: gw, Engine: eng})
		}
		return gridmind.New(gridmind.Options{Model: model, Engine: eng})
	}
	mgr := newSessionManager(factory, *sessionTTL, *maxSessions, *maxQueue, *spillDir, met)
	defer mgr.close()

	profile, _ := llm.ProfileByName(*modelName)
	srv := &server{
		mgr:      mgr,
		eng:      eng,
		met:      met,
		def:      factory(*modelName),
		sim:      llm.Handler(llm.NewSim(profile)),
		maxBody:  *maxBody,
		gw:       gw,
		maxQueue: *maxQueue,
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: SIGINT/SIGTERM stop accepting and drain in-flight
	// requests instead of dying mid-solve under a bare log.Fatal.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("gridmind-server listening on %s (default model %s, session ttl %s, max sessions %d)",
		*addr, *modelName, *sessionTTL, *maxSessions)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("gridmind-server: shutdown signal received, draining")
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer shutCancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("gridmind-server: forced shutdown: %v", err)
		}
	}
}

// buildGateway parses the -gateway deployment list. Each entry is
// "name=model-or-URL[@weight]": an http(s) URL becomes a chat-completions
// deployment, a model name becomes a simulated one. List order sets
// priority (first = most preferred).
func buildGateway(spec, strategy string, health time.Duration, met *gridmind.MetricsRegistry) (*gridmind.Gateway, error) {
	var deps []gridmind.GatewayDeployment
	for i, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, target, ok := strings.Cut(item, "=")
		if !ok || name == "" || target == "" {
			return nil, fmt.Errorf("-gateway: entry %q is not name=model-or-URL[@weight]", item)
		}
		weight := 1
		if base, w, ok := strings.Cut(target, "@"); ok {
			n, err := strconv.Atoi(w)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("-gateway: entry %q has a bad weight %q", item, w)
			}
			target, weight = base, n
		}
		var client gridmind.Client
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
			client = gridmind.NewHTTPClient(target, name)
		} else {
			var err error
			if client, err = gridmind.NewSimClient(target); err != nil {
				return nil, fmt.Errorf("-gateway: entry %q: %w", item, err)
			}
		}
		deps = append(deps, gridmind.GatewayDeployment{
			Name: name, Client: client, Weight: weight, Priority: i,
		})
	}
	if len(deps) == 0 {
		return nil, errors.New("-gateway: no deployments in spec")
	}
	return gridmind.NewGateway(deps, gridmind.GatewayConfig{
		Name:     "gridmind-server",
		Strategy: gridmind.GatewayStrategy(strategy),
		Health:   gridmind.GatewayHealthConfig{Interval: health},
		Metrics:  met,
	})
}
