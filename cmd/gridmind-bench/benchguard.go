package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gridmind"
	"gridmind/internal/cases"
	"gridmind/internal/contingency"
	"gridmind/internal/engine"
	"gridmind/internal/fleet"
	"gridmind/internal/model"
	"gridmind/internal/obs"
	"gridmind/internal/opf"
	"gridmind/internal/powerflow"
	"gridmind/internal/ptdf"
	"gridmind/internal/scenario"
	"gridmind/internal/scopf"
	"gridmind/internal/session"
)

// benchBaseline mirrors the subset of BENCH_numeric.json the guard reads.
type benchBaseline struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After struct {
			NsOp     float64 `json:"ns_op"`
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// guardSpec is one benchmark the regression gate runs in-process.
type guardSpec struct {
	// name matches the benchmark entry in BENCH_numeric.json (an "…Full"
	// suffix on the recorded name is accepted).
	name string
	run  func(b *testing.B)
}

// guardRow is one measured-vs-baseline comparison, kept for the failure
// table and the fresh-results artifact.
type guardRow struct {
	Name           string  `json:"name"`
	BaselineNsOp   float64 `json:"baseline_ns_op"`
	MeasuredNsOp   float64 `json:"measured_ns_op"`
	BaselineAllocs float64 `json:"baseline_allocs_op"`
	MeasuredAllocs float64 `json:"measured_allocs_op"`
	MeasuredBOp    float64 `json:"measured_b_op"`
	Failed         bool    `json:"failed"`
}

// runBenchGuard executes the guarded benchmarks in-process (minimum of
// three testing.Benchmark runs each, to shed scheduler noise) and compares
// them against the checked-in baseline:
//
//   - ns/op may regress at most by the tolerance fraction (wall-time guard;
//     CI hardware is assumed no slower than the baseline machine);
//   - allocs/op may regress at most by the same fraction — allocation
//     counts are machine-independent, so this arm catches a reintroduced
//     per-outage clone or per-iteration KKT rebuild even on faster
//     hardware.
//
// Every run writes the fresh measurements to outPath (when non-empty) so
// CI can archive them as an artifact, and any failure prints the full
// before/after table instead of just naming the failing metric.
//
// Guarded workloads (all with Workers pinned to 1, matching the baseline
// protocol: BENCH_numeric.json is regenerated with `go test -cpu 1`, and
// per-worker context setup would otherwise scale allocs/op with the
// runner's core count):
//
//   - the N-1 branch sweep on caseName (the PR 2 zero-clone path);
//   - the N-1 generation sweep on case57 (the in-place classification
//     path — a reintroduced Materialize shows up in allocs/op);
//   - the N-2 screening pipeline on case57 (pair seeding + LODF pair
//     pre-screen + zero-clone AC verification, candidate set capped);
//   - the interior-point ACOPF on case57 and case118 (the PR 3
//     fixed-pattern KKT path);
//   - the SCOPF tightening loop on case57 (ACOPF × N-1 × rounds);
//   - the session snapshot-cache hit path (Network() on an unchanged diff
//     log — a reintroduced per-call clone/replay trips the alloc arm);
//   - the 8-session concurrent serving workload over one shared engine
//     (the PR 5 multi-session path; per-ask allocations are the
//     machine-independent arm);
//   - the N-k cascade sweep on case57 (pooled zero-clone contexts +
//     lazy-LODF DC pre-screen) and the 64-draw seeded Monte Carlo
//     reliability loop (the PR 7 scenario engine);
//   - the obs-registry instrument hot path (counter Inc + histogram
//     Observe), pinned to exactly 0 allocs/op.
func runBenchGuard(baselinePath, outPath, caseName string, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	canon := cases.Canonical(caseName)
	if canon == "" {
		return fmt.Errorf("unknown case %q", caseName)
	}
	sweepCase := cases.MustLoad(canon)
	sweepBase, err := powerflow.Solve(sweepCase, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		return fmt.Errorf("base power flow: %w", err)
	}
	case57 := cases.MustLoad("case57")
	base57, err := powerflow.Solve(case57, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		return fmt.Errorf("case57 base power flow: %w", err)
	}
	n157, err := contingency.Analyze(case57, base57, contingency.Options{Workers: 1})
	if err != nil {
		return fmt.Errorf("case57 N-1 seed sweep: %w", err)
	}

	specs := []guardSpec{
		{
			name: "BenchmarkN1Sweep" + strings.ToUpper(canon[:1]) + canon[1:],
			run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := contingency.Analyze(sweepCase, sweepBase, contingency.Options{Workers: 1}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "BenchmarkGenSweepCase57",
			run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := contingency.AnalyzeGenOutages(case57, contingency.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "BenchmarkN2ScreenCase57",
			run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rs, err := contingency.AnalyzeN2(case57, base57, n157, contingency.N2Options{
						Options:  contingency.Options{Workers: 1},
						MaxPairs: 200,
					})
					if err != nil {
						b.Fatal(err)
					}
					if len(rs.Outages) == 0 {
						b.Fatal("empty N-2 sweep")
					}
				}
			},
		},
		{name: "BenchmarkACOPFCase57", run: benchGuardACOPF(cases.MustLoad("case57"))},
		{name: "BenchmarkACOPFCase118", run: benchGuardACOPF(cases.MustLoad("case118"))},
		{name: "BenchmarkACOPFCase300", run: benchGuardACOPF(cases.MustLoad("case300"))},
		{
			// The session snapshot-cache hit path: every tool call's state
			// access. A reintroduced per-call clone+replay shows up as 5
			// allocs/op against a 0-alloc baseline.
			name: "BenchmarkSessionNetworkSnapshot",
			run: func() func(b *testing.B) {
				sess := session.New(nil)
				if _, err := sess.LoadCase("case57"); err != nil {
					return func(b *testing.B) { b.Fatal(err) }
				}
				mods := []session.Modification{
					{Kind: session.ModSetLoad, BusID: 9, PMW: 40, QMVAr: 12},
					{Kind: session.ModScaleLoad, Factor: 1.05},
					{Kind: session.ModOutageBranch, Branch: 3},
					{Kind: session.ModRestoreBranch, Branch: 3},
					{Kind: session.ModSetGenP, Gen: 1, PMW: 55},
				}
				for _, m := range mods {
					if err := sess.Apply(m); err != nil {
						return func(b *testing.B) { b.Fatal(err) }
					}
				}
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := sess.Network(); err != nil {
							b.Fatal(err)
						}
					}
				}
			}(),
		},
		{
			// Multi-session serving throughput: 8 sessions, one shared
			// engine, concurrent asks. allocs/op is the machine-independent
			// arm — a session that stops sharing compiled artifacts (or a
			// tool call that re-grows per-ask allocations) trips it even on
			// faster hardware.
			name: "BenchmarkConcurrentAsk8",
			run: func() func(b *testing.B) {
				eng := gridmind.NewEngine()
				const k = 8
				sessions := make([]*gridmind.GridMind, k)
				for i := range sessions {
					sessions[i] = gridmind.New(gridmind.Options{Engine: eng})
				}
				if _, err := sessions[0].Ask(context.Background(), "Solve IEEE 14"); err != nil {
					return func(b *testing.B) { b.Fatal(err) }
				}
				return func(b *testing.B) {
					b.ReportAllocs()
					var next int64
					var wg sync.WaitGroup
					var failed atomic.Bool
					for w := 0; w < k; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for {
								if int(atomic.AddInt64(&next, 1)) > b.N {
									return
								}
								ex, err := sessions[w].Ask(context.Background(), "Solve IEEE 14")
								if err != nil || !ex.Success {
									failed.Store(true)
									return
								}
							}
						}(w)
					}
					wg.Wait()
					if failed.Load() {
						b.Fatal("concurrent ask failed")
					}
				}
			}(),
		},
		{
			// The scenario engine's N-k cascade sweep: 80 seeds propagated
			// to depth 3 on pooled zero-clone contexts with the lazy-LODF DC
			// pre-screen. A reintroduced per-stage clone (or a dead screen)
			// shows up in the machine-independent allocs/op arm.
			name: "BenchmarkCascadeCase57",
			run: func() func(b *testing.B) {
				ptdfM, err := ptdf.Build(case57)
				if err != nil {
					return func(b *testing.B) { b.Fatal(err) }
				}
				opts := scenario.Options{
					BaseYbus: model.BuildYbus(case57),
					Topology: model.NewTopology(case57),
					Pool:     scenario.NewPool(),
					DCScreen: true,
					PTDF:     ptdfM,
					Workers:  1,
				}
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						sw, err := scenario.Sweep(case57, base57, opts)
						if err != nil {
							b.Fatal(err)
						}
						if sw.Seeds == 0 || sw.Screened == 0 {
							b.Fatal("degenerate sweep")
						}
					}
				}
			}(),
		},
		{
			// 64 seeded Monte Carlo reliability draws through the cascade
			// engine (per-sample splitmix64 RNG, so the workload is
			// bit-identical every run and at any worker count).
			name: "BenchmarkMCReliability",
			run: func() func(b *testing.B) {
				opts := scenario.Options{
					BaseYbus: model.BuildYbus(case57),
					Topology: model.NewTopology(case57),
					Pool:     scenario.NewPool(),
					Workers:  1,
				}
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						mc, err := scenario.RunMC(case57, base57, scenario.MCOptions{
							Samples:          64,
							Seed:             2026,
							BranchOutageProb: 0.01,
							GenOutageProb:    0.005,
							LoadSigma:        0.03,
							Cascade:          opts,
						})
						if err != nil {
							b.Fatal(err)
						}
						if mc.Samples != 64 {
							b.Fatal("bad sample count")
						}
					}
				}
			}(),
		},
		{
			// The obs-registry instrument hot path every engine lookup,
			// gateway attempt and tool call rides: pre-registered counter Inc
			// plus histogram Observe. The baseline is exactly 0 allocs/op;
			// the alloc arm's zero-baseline case fails on ANY allocation
			// creeping into the publish path.
			name: "BenchmarkRegistryHotPath",
			run: func() func(b *testing.B) {
				met := obs.NewRegistry()
				c := met.Counter("bench_hot_total", "hot-path benchmark counter", "path", "hot")
				h := met.Histogram("bench_hot_seconds", "hot-path benchmark histogram", nil, "path", "hot")
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						c.Inc()
						h.Observe(0.0042)
					}
				}
			}(),
		},
		{
			name: "BenchmarkSCOPFCase57",
			run: func() func(b *testing.B) {
				n := cases.MustLoad("case57")
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := scopf.Solve(n, scopf.Options{Screen: true, MaxRounds: 2, Workers: 1}); err != nil {
							b.Fatal(err)
						}
					}
				}
			}(),
		},
		{
			// The distributed N-1 sweep on two loopback workers: shard
			// split, HTTP/JSON dispatch, engine-threaded shard solves,
			// offset-based merge. Worker engines warm before timing, so a
			// regression here is fleet protocol overhead (serialization,
			// dispatch, merge) — the solver arms are guarded separately.
			// Sweep IDs rotate per iteration; a repeated ID would measure
			// the workers' idempotency replay instead of the sweep.
			name: "BenchmarkFleetSweepCase57",
			run: func() func(b *testing.B) {
				urls := make([]string, 2)
				for i := range urls {
					w := fleet.NewWorker(fmt.Sprintf("guard-w%d", i), engine.New(), nil, obs.NewRegistry())
					urls[i] = httptest.NewServer(w.Handler()).URL
				}
				coord, cerr := fleet.NewCoordinator(fleet.Config{Workers: urls})
				branches := cases.MustLoad("case57").InServiceBranches()
				var sweepSeq atomic.Int64
				ctx := context.Background()
				warmed := false
				return func(b *testing.B) {
					if cerr != nil {
						b.Fatal(cerr)
					}
					if !warmed {
						warmed = true
						if _, err := coord.SweepN1(ctx, "guard-fleet-warm", "case57", branches, fleet.SweepOptions{DCScreen: true}); err != nil {
							b.Fatal(err)
						}
						b.ResetTimer()
					}
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						id := fmt.Sprintf("guard-fleet-%d", sweepSeq.Add(1))
						rs, err := coord.SweepN1(ctx, id, "case57", branches, fleet.SweepOptions{DCScreen: true})
						if err != nil {
							b.Fatal(err)
						}
						if len(rs.Outages) != len(branches) {
							b.Fatal("short sweep")
						}
					}
				}
			}(),
		},
	}

	rows := make([]guardRow, 0, len(specs))
	var failures []string
	for _, spec := range specs {
		var refNs, refAllocs float64
		found := false
		for _, b := range base.Benchmarks {
			if b.Name == spec.name || b.Name == spec.name+"Full" {
				refNs, refAllocs = b.After.NsOp, b.After.AllocsOp
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no %s baseline in %s", spec.name, baselinePath)
		}

		bestNs, bestAllocs, bestBytes := -1.0, -1.0, -1.0
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(spec.run)
			if ns := float64(r.NsPerOp()); bestNs < 0 || ns < bestNs {
				bestNs = ns
			}
			if allocs := float64(r.AllocsPerOp()); bestAllocs < 0 || allocs < bestAllocs {
				bestAllocs = allocs
			}
			if by := float64(r.AllocedBytesPerOp()); bestBytes < 0 || by < bestBytes {
				bestBytes = by
			}
		}

		row := guardRow{
			Name:         spec.name,
			BaselineNsOp: refNs, MeasuredNsOp: bestNs,
			BaselineAllocs: refAllocs, MeasuredAllocs: bestAllocs,
			MeasuredBOp: bestBytes,
		}
		fmt.Printf("benchguard %s: %.0f ns/op (baseline %.0f), %.0f allocs/op (baseline %.0f), tolerance %.0f%%\n",
			spec.name, bestNs, refNs, bestAllocs, refAllocs, 100*tol)
		if bestNs > refNs*(1+tol) {
			row.Failed = true
			failures = append(failures, fmt.Sprintf("%s ns/op regressed: %.0f > %.0f (+%.0f%% allowed)", spec.name, bestNs, refNs, 100*tol))
		}
		// A zero-alloc baseline is pinned exactly: tolerance is a fraction,
		// and any fraction of zero is zero — one allocation on a 0-alloc
		// hot path is the whole regression.
		if (refAllocs == 0 && bestAllocs > 0) || (refAllocs > 0 && bestAllocs > refAllocs*(1+tol)) {
			row.Failed = true
			failures = append(failures, fmt.Sprintf("%s allocs/op regressed: %.0f > %.0f (+%.0f%% allowed)", spec.name, bestAllocs, refAllocs, 100*tol))
		}
		rows = append(rows, row)
	}

	if outPath != "" {
		if err := writeFreshBench(outPath, baselinePath, tol, rows); err != nil {
			return fmt.Errorf("write fresh bench results: %w", err)
		}
		fmt.Printf("benchguard: fresh measurements written to %s\n", outPath)
	}

	if len(failures) > 0 {
		printGuardTable(rows, tol)
		return errors.New(strings.Join(failures, "; "))
	}
	fmt.Println("benchguard: OK")
	return nil
}

// printGuardTable renders the full before/after comparison so a failing CI
// run shows every guarded metric in context, not just the one that
// tripped.
func printGuardTable(rows []guardRow, tol float64) {
	pct := func(meas, ref float64) string {
		if ref <= 0 {
			return "   n/a"
		}
		return fmt.Sprintf("%+5.1f%%", 100*(meas-ref)/ref)
	}
	fmt.Printf("\nbenchguard comparison (tolerance +%.0f%%):\n", 100*tol)
	fmt.Printf("%-28s %14s %14s %7s %12s %12s %7s  %s\n",
		"benchmark", "base ns/op", "meas ns/op", "Δ", "base allocs", "meas allocs", "Δ", "verdict")
	for _, r := range rows {
		verdict := "ok"
		if r.Failed {
			verdict = "FAIL"
		}
		fmt.Printf("%-28s %14.0f %14.0f %7s %12.0f %12.0f %7s  %s\n",
			r.Name, r.BaselineNsOp, r.MeasuredNsOp, pct(r.MeasuredNsOp, r.BaselineNsOp),
			r.BaselineAllocs, r.MeasuredAllocs, pct(r.MeasuredAllocs, r.BaselineAllocs), verdict)
	}
}

// writeFreshBench dumps the run's measurements in a BENCH_numeric.json-like
// shape for the CI artifact.
func writeFreshBench(path, baselinePath string, tol float64, rows []guardRow) error {
	type freshEntry struct {
		Name  string `json:"name"`
		After struct {
			NsOp     float64 `json:"ns_op"`
			BOp      float64 `json:"b_op"`
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
		BaselineNsOp   float64 `json:"baseline_ns_op"`
		BaselineAllocs float64 `json:"baseline_allocs_op"`
		Failed         bool    `json:"failed"`
	}
	out := struct {
		Description string       `json:"description"`
		Baseline    string       `json:"baseline"`
		Tolerance   float64      `json:"tolerance"`
		Benchmarks  []freshEntry `json:"benchmarks"`
	}{
		Description: "benchguard fresh measurements (best of 3 in-process runs, Workers pinned to 1)",
		Baseline:    baselinePath,
		Tolerance:   tol,
	}
	for _, r := range rows {
		e := freshEntry{Name: r.Name, BaselineNsOp: r.BaselineNsOp, BaselineAllocs: r.BaselineAllocs, Failed: r.Failed}
		e.After.NsOp = r.MeasuredNsOp
		e.After.BOp = r.MeasuredBOp
		e.After.AllocsOp = r.MeasuredAllocs
		out.Benchmarks = append(out.Benchmarks, e)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchGuardACOPF closes over a pre-loaded network so case parsing stays
// outside the measured loop, matching the bench_numeric_test.go protocol
// (ResetTimer after load).
func benchGuardACOPF(n *model.Network) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := opf.SolveACOPF(n, opf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if !sol.Solved {
				b.Fatal("not solved")
			}
		}
	}
}
