package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"gridmind/internal/cases"
	"gridmind/internal/contingency"
	"gridmind/internal/model"
	"gridmind/internal/opf"
	"gridmind/internal/powerflow"
	"gridmind/internal/scopf"
)

// benchBaseline mirrors the subset of BENCH_numeric.json the guard reads.
type benchBaseline struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After struct {
			NsOp     float64 `json:"ns_op"`
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// guardSpec is one benchmark the regression gate runs in-process.
type guardSpec struct {
	// name matches the benchmark entry in BENCH_numeric.json (an "…Full"
	// suffix on the recorded name is accepted).
	name string
	run  func(b *testing.B)
}

// runBenchGuard executes the guarded benchmarks in-process (minimum of
// three testing.Benchmark runs each, to shed scheduler noise) and compares
// them against the checked-in baseline:
//
//   - ns/op may regress at most by the tolerance fraction (wall-time guard;
//     CI hardware is assumed no slower than the baseline machine);
//   - allocs/op may regress at most by the same fraction — allocation
//     counts are machine-independent, so this arm catches a reintroduced
//     per-outage clone or per-iteration KKT rebuild even on faster
//     hardware.
//
// Guarded workloads (all with Workers pinned to 1, matching the baseline
// protocol: BENCH_numeric.json is regenerated with `go test -cpu 1`, and
// per-worker context setup would otherwise scale allocs/op with the
// runner's core count):
//
//   - the N-1 sweep on caseName (the PR 2 zero-clone path);
//   - the interior-point ACOPF on case57 and case118 (the PR 3
//     fixed-pattern KKT path);
//   - the SCOPF tightening loop on case57 (ACOPF × N-1 × rounds).
func runBenchGuard(baselinePath, caseName string, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	canon := cases.Canonical(caseName)
	if canon == "" {
		return fmt.Errorf("unknown case %q", caseName)
	}
	sweepCase := cases.MustLoad(canon)
	sweepBase, err := powerflow.Solve(sweepCase, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		return fmt.Errorf("base power flow: %w", err)
	}

	specs := []guardSpec{
		{
			name: "BenchmarkN1Sweep" + strings.ToUpper(canon[:1]) + canon[1:],
			run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := contingency.Analyze(sweepCase, sweepBase, contingency.Options{Workers: 1}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{name: "BenchmarkACOPFCase57", run: benchGuardACOPF(cases.MustLoad("case57"))},
		{name: "BenchmarkACOPFCase118", run: benchGuardACOPF(cases.MustLoad("case118"))},
		{
			name: "BenchmarkSCOPFCase57",
			run: func() func(b *testing.B) {
				n := cases.MustLoad("case57")
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := scopf.Solve(n, scopf.Options{Screen: true, MaxRounds: 2, Workers: 1}); err != nil {
							b.Fatal(err)
						}
					}
				}
			}(),
		},
	}

	for _, spec := range specs {
		var refNs, refAllocs float64
		found := false
		for _, b := range base.Benchmarks {
			if b.Name == spec.name || b.Name == spec.name+"Full" {
				refNs, refAllocs = b.After.NsOp, b.After.AllocsOp
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no %s baseline in %s", spec.name, baselinePath)
		}

		bestNs, bestAllocs := -1.0, -1.0
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(spec.run)
			ns := float64(r.NsPerOp())
			allocs := float64(r.AllocsPerOp())
			if bestNs < 0 || ns < bestNs {
				bestNs = ns
			}
			if bestAllocs < 0 || allocs < bestAllocs {
				bestAllocs = allocs
			}
		}

		fmt.Printf("benchguard %s: %.0f ns/op (baseline %.0f), %.0f allocs/op (baseline %.0f), tolerance %.0f%%\n",
			spec.name, bestNs, refNs, bestAllocs, refAllocs, 100*tol)
		if bestNs > refNs*(1+tol) {
			return fmt.Errorf("%s ns/op regressed: %.0f > %.0f (+%.0f%% allowed)", spec.name, bestNs, refNs, 100*tol)
		}
		if refAllocs > 0 && bestAllocs > refAllocs*(1+tol) {
			return fmt.Errorf("%s allocs/op regressed: %.0f > %.0f (+%.0f%% allowed)", spec.name, bestAllocs, refAllocs, 100*tol)
		}
	}
	fmt.Println("benchguard: OK")
	return nil
}

// benchGuardACOPF closes over a pre-loaded network so case parsing stays
// outside the measured loop, matching the bench_numeric_test.go protocol
// (ResetTimer after load).
func benchGuardACOPF(n *model.Network) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := opf.SolveACOPF(n, opf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if !sol.Solved {
				b.Fatal("not solved")
			}
		}
	}
}
