package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"gridmind/internal/cases"
	"gridmind/internal/contingency"
	"gridmind/internal/powerflow"
)

// benchBaseline mirrors the subset of BENCH_numeric.json the guard reads.
type benchBaseline struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After struct {
			NsOp     float64 `json:"ns_op"`
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// runBenchGuard executes the N-1 sweep benchmark for caseName in-process
// (minimum of three testing.Benchmark runs, to shed scheduler noise) and
// compares it against the checked-in baseline:
//
//   - ns/op may regress at most by the tolerance fraction (wall-time guard;
//     CI hardware is assumed no slower than the baseline machine);
//   - allocs/op may regress at most by the same fraction — allocation
//     counts are machine-independent, so this arm catches a reintroduced
//     per-outage clone even on faster hardware.
//
// The sweep runs with Workers pinned to 1, matching the baseline protocol
// (BENCH_numeric.json is regenerated with `go test -cpu 1`): per-worker
// context setup would otherwise scale allocs/op with the runner's core
// count and make the comparison shape-dependent.
func runBenchGuard(baselinePath, caseName string, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	canon := cases.Canonical(caseName)
	if canon == "" {
		return fmt.Errorf("unknown case %q", caseName)
	}
	want := "BenchmarkN1Sweep" + strings.ToUpper(canon[:1]) + canon[1:]
	var refNs, refAllocs float64
	found := false
	for _, b := range base.Benchmarks {
		if b.Name == want || b.Name == want+"Full" {
			refNs, refAllocs = b.After.NsOp, b.After.AllocsOp
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("no %s baseline in %s", want, baselinePath)
	}

	n := cases.MustLoad(canon)
	pf, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		return fmt.Errorf("base power flow: %w", err)
	}
	bestNs, bestAllocs := -1.0, -1.0
	for rep := 0; rep < 3; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Workers pinned to 1: per-worker context setup scales
				// allocs/op (and wall-time noise) with GOMAXPROCS, and the
				// baseline must be comparable across CI runner shapes.
				if _, err := contingency.Analyze(n, pf, contingency.Options{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.NsPerOp())
		allocs := float64(r.AllocsPerOp())
		if bestNs < 0 || ns < bestNs {
			bestNs = ns
		}
		if bestAllocs < 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}

	fmt.Printf("benchguard %s: %.0f ns/op (baseline %.0f), %.0f allocs/op (baseline %.0f), tolerance %.0f%%\n",
		want, bestNs, refNs, bestAllocs, refAllocs, 100*tol)
	if bestNs > refNs*(1+tol) {
		return fmt.Errorf("%s ns/op regressed: %.0f > %.0f (+%.0f%% allowed)", want, bestNs, refNs, 100*tol)
	}
	if refAllocs > 0 && bestAllocs > refAllocs*(1+tol) {
		return fmt.Errorf("%s allocs/op regressed: %.0f > %.0f (+%.0f%% allowed)", want, bestAllocs, refAllocs, 100*tol)
	}
	fmt.Println("benchguard: OK")
	return nil
}
