// Command gridmind-bench regenerates the paper's evaluation artifacts:
// every panel of Figure 3 and Tables 1-2, at the paper's configuration
// (six models, five runs, case118) or a custom scope.
//
// Usage:
//
//	gridmind-bench                         # everything, paper configuration
//	gridmind-bench -experiment table1      # one experiment
//	gridmind-bench -runs 3 -case case30    # scaled-down scope
//
// It doubles as the CI performance-regression gate for the numeric core:
//
//	gridmind-bench -benchguard BENCH_numeric.json
//
// runs the guarded benchmarks in-process — the N-1 branch sweep (case
// from -benchguard-case), the N-1 generation sweep and N-2 screening
// pipeline on case57, the fixed-pattern ACOPF on case57/case118 and the
// SCOPF loop on case57 — and exits nonzero when any ns/op (or allocs/op,
// a machine-independent signal) regresses beyond the tolerance against
// the checked-in baseline, printing the full before/after table on
// failure. -benchguard-out archives the fresh measurements as JSON.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"gridmind/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all",
		"which experiment: fig3-success, fig3-dist, fig3-scaling, table1, table2, reliability, all; fleet-scaling and fleet-compare run only when named explicitly")
	runs := flag.Int("runs", 5, "runs per (model, case) cell")
	caseName := flag.String("case", "case118", "fixed case for fig3-success/fig3-dist/table1")
	models := flag.String("models", "", "comma-separated model subset (default: all six)")
	guard := flag.String("benchguard", "", "path to BENCH_numeric.json: run the guarded benchmarks (N-1 branch/gen sweeps, N-2 screening, ACOPF case57/118, SCOPF case57, cascade sweep, Monte Carlo reliability, obs-registry hot path) against their recorded baselines and fail on regression")
	guardCase := flag.String("benchguard-case", "case57", "case for the -benchguard N-1 sweep benchmark (the ACOPF/SCOPF cases are fixed by their baselines)")
	guardTol := flag.Float64("benchguard-tolerance", 0.30, "allowed fractional ns/op regression before -benchguard fails")
	guardOut := flag.String("benchguard-out", "", "path to write the fresh -benchguard measurements as JSON (CI uploads it as an artifact)")
	fleetWorkers := flag.String("workers", "", "comma-separated worker base URLs for -experiment fleet-compare (real `gridmind-server -worker` processes)")
	fleetSizes := flag.String("fleet-sizes", "1,2,4", "comma-separated worker counts for -experiment fleet-scaling")
	fleetCases := flag.String("fleet-cases", "case300,case3000", "comma-separated cases for -experiment fleet-scaling")
	artifactDir := flag.String("artifact-dir", "", "persistent artifact store mounted on fleet-scaling workers (empty = every worker compiles cold)")
	flag.Parse()

	if *guard != "" {
		if err := runBenchGuard(*guard, *guardOut, *guardCase, *guardTol); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Runs: *runs, Case: *caseName}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	ctx := context.Background()

	// The fleet experiments never ride along with "all": fleet-scaling
	// sweeps case3000 (minutes of solves) and fleet-compare needs external
	// worker processes, so both run only when explicitly named.
	switch *exp {
	case "fleet-scaling":
		fcfg := experiments.FleetConfig{ArtifactDir: *artifactDir}
		for _, c := range strings.Split(*fleetCases, ",") {
			if c = strings.TrimSpace(c); c != "" {
				fcfg.Cases = append(fcfg.Cases, c)
			}
		}
		for _, s := range strings.Split(*fleetSizes, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "fleet-scaling: bad -fleet-sizes entry %q\n", s)
				os.Exit(2)
			}
			fcfg.WorkerCounts = append(fcfg.WorkerCounts, n)
		}
		pts, err := experiments.FleetScaling(ctx, fcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet-scaling: %v\n", err)
			os.Exit(1)
		}
		experiments.FormatFleet(os.Stdout, pts)
		return
	case "fleet-compare":
		if *fleetWorkers == "" {
			fmt.Fprintln(os.Stderr, "fleet-compare: -workers is required (comma-separated worker URLs)")
			os.Exit(2)
		}
		res, err := experiments.FleetCompare(ctx, strings.Split(*fleetWorkers, ","), *caseName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet-compare: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fleet-compare: %s on %d workers: %d outages (%d screened) in %.2fs, exact match with single-process sweep\n",
			res.Case, res.Workers, res.Outages, res.Screened, res.Seconds)
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table2", func() error {
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		experiments.FormatTable2(os.Stdout, rows)
		return nil
	})
	run("fig3-success", func() error {
		rows, err := experiments.Figure3Success(ctx, cfg)
		if err != nil {
			return err
		}
		experiments.FormatSuccess(os.Stdout, rows)
		return nil
	})
	run("fig3-dist", func() error {
		rows, err := experiments.Figure3Distribution(ctx, cfg)
		if err != nil {
			return err
		}
		experiments.FormatDistribution(os.Stdout, rows)
		return nil
	})
	run("fig3-scaling", func() error {
		scaleCfg := cfg
		if *exp == "all" && *runs > 3 {
			// The full 6×5 sweep with 5 runs is ~150 agent turns; 3 runs
			// match the paper's qualitative panel at a third of the cost.
			scaleCfg.Runs = 3
		}
		pts, err := experiments.Figure3Scaling(ctx, scaleCfg)
		if err != nil {
			return err
		}
		experiments.FormatScaling(os.Stdout, pts)
		return nil
	})
	run("table1", func() error {
		rows, err := experiments.Table1(ctx, cfg)
		if err != nil {
			return err
		}
		experiments.FormatTable1(os.Stdout, rows)
		return nil
	})
	run("reliability", func() error {
		relCfg := cfg
		if *exp == "all" {
			// Mixed sessions are heavy (each runs several solves); two
			// sessions per model suffice for the trend table.
			relCfg.Runs = 2
		}
		rows, err := experiments.Reliability(ctx, relCfg)
		if err != nil {
			return err
		}
		experiments.FormatReliability(os.Stdout, rows)
		return nil
	})
}
