// Package gridmind is the public API of GridMind-Go, a from-scratch Go
// reproduction of "GridMind: LLMs-Powered Agents for Power System
// Analysis and Operations" (Jin, Kim & Kwon, Argonne National Laboratory,
// 2025): a multi-agent AI system that couples conversational LLM agents
// with deterministic power-system solvers — AC optimal power flow and N-1
// contingency analysis — over strongly typed, schema-validated tools and
// a shared, versioned session context.
//
// # Quick start
//
//	gm := gridmind.New(gridmind.Options{Model: gridmind.ModelGPTO3})
//	ex, err := gm.Ask(context.Background(), "Solve IEEE 118")
//	fmt.Println(ex.Reply)
//
// Every numeric in a reply is pulled from stored structured solver
// results; the narration is audited against them before it is returned.
//
// The solvers are also usable directly, without any agent in the loop:
//
//	net, _ := gridmind.LoadCase("case118")
//	sol, _ := gridmind.SolveACOPF(net)
//	fmt.Println(sol.ObjectiveCost)
package gridmind

import (
	"context"
	"fmt"
	"io"
	"time"

	"gridmind/internal/agents"
	"gridmind/internal/cases"
	"gridmind/internal/contingency"
	"gridmind/internal/engine"
	"gridmind/internal/llm"
	"gridmind/internal/llm/gateway"
	"gridmind/internal/metrics"
	"gridmind/internal/model"
	"gridmind/internal/obs"
	"gridmind/internal/opf"
	"gridmind/internal/powerflow"
	"gridmind/internal/scenario"
	"gridmind/internal/session"
	"gridmind/internal/simclock"
)

// Re-exported domain types. These aliases are the stable public surface;
// the internal packages remain free to grow.
type (
	// Network is a complete power-system case.
	Network = model.Network
	// Summary is a case's component inventory (the paper's Table 2 row).
	Summary = model.Summary
	// ACOPFSolution is a solved optimal power flow (Appendix C schema).
	ACOPFSolution = opf.Solution
	// PowerFlowResult is a solved AC/DC power flow.
	PowerFlowResult = powerflow.Result
	// ContingencySet is a full N-1 sweep with ranking accessors.
	ContingencySet = contingency.ResultSet
	// OutageResult is one contingency's structured record.
	OutageResult = contingency.OutageResult
	// Exchange is a coordinated multi-agent reply.
	Exchange = agents.Exchange
	// Turn is one agent's structured interaction record.
	Turn = agents.Turn
	// Interaction is one instrumentation row.
	Interaction = metrics.Interaction
	// Quality is the solution-quality assessment schema.
	Quality = opf.Quality
	// Engine is the process-wide compiled-artifact store shared by
	// concurrent sessions (see Options.Engine and NewEngine).
	Engine = engine.Engine
	// EngineStats is an Engine's reuse-counter snapshot.
	EngineStats = engine.Stats
	// Client is the chat-completion backend interface; see Options.Client.
	Client = llm.Client
	// Gateway is a resilient multi-deployment LLM client: routing,
	// per-deployment circuit breakers, health probing, retry/backoff and
	// fallback chains (see NewGateway).
	Gateway = gateway.Gateway
	// GatewayDeployment names one backend behind a Gateway.
	GatewayDeployment = gateway.Deployment
	// GatewayConfig tunes a Gateway's routing, breakers, retries, health.
	GatewayConfig = gateway.Config
	// GatewayStats is a Gateway's counter snapshot.
	GatewayStats = gateway.Stats
	// GatewayStrategy names a Gateway routing policy ("priority",
	// "round-robin", "least-latency", "weighted").
	GatewayStrategy = gateway.Strategy
	// GatewayHealthConfig tunes a Gateway's background health probing.
	GatewayHealthConfig = gateway.HealthConfig
	// FaultSpec configures deterministic fault injection for chaos testing
	// (see NewChaosClient).
	FaultSpec = llm.FaultSpec
	// ScenarioOptions configures cascade studies, sweeps and episodes.
	ScenarioOptions = scenario.Options
	// CascadeEvent is one initiating disturbance for a cascade study.
	CascadeEvent = scenario.Event
	// CascadeResult is a full N-k cascade record: stage-by-stage trips,
	// violations and the terminal outcome.
	CascadeResult = scenario.CascadeResult
	// CascadeSweepResult aggregates cascades seeded from every in-service
	// branch outage.
	CascadeSweepResult = scenario.SweepResult
	// EpisodeStep is one operating point of a time-series episode.
	EpisodeStep = scenario.EpisodeStep
	// EpisodeResult aggregates a solved time-series episode.
	EpisodeResult = scenario.EpisodeResult
	// MCOptions configures Monte Carlo reliability sampling.
	MCOptions = scenario.MCOptions
	// MCResult is a Monte Carlo reliability estimate with Wilson 95%
	// confidence intervals.
	MCResult = scenario.MCResult
	// MetricsRegistry is the typed observability registry every layer
	// publishes on (counters, gauges, latency histograms); scrape it with
	// WritePrometheus. See Options.Metrics and (*GridMind).MetricsRegistry.
	MetricsRegistry = obs.Registry
	// MetricsCounter is an allocation-free monotone counter.
	MetricsCounter = obs.Counter
	// MetricsGauge is an allocation-free float64 gauge.
	MetricsGauge = obs.Gauge
	// MetricsHistogram is a fixed-bucket latency histogram with summary
	// quantiles.
	MetricsHistogram = obs.Histogram
)

// NewEngine returns a fresh shared artifact store. Hand the same engine to
// every gridmind.New call in a serving process so N sessions on the same
// case share one compilation instead of N; sessions created without one
// share a process-wide default.
func NewEngine() *Engine { return engine.New() }

// NewMetricsRegistry returns a fresh observability registry. Pass it via
// Options.Metrics (and GatewayConfig.Metrics) to collect every layer's
// instruments on one scrapeable surface; a session created without one
// publishes on its engine's registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Evaluated model names (the paper's §4 set).
const (
	ModelGPT5       = llm.ModelGPT5
	ModelGPT5Mini   = llm.ModelGPT5Mini
	ModelGPT5Nano   = llm.ModelGPT5Nano
	ModelGPTO4Mini  = llm.ModelGPTO4Mini
	ModelGPTO3      = llm.ModelGPTO3
	ModelClaude4Son = llm.ModelClaude4Son
)

// Models lists the six evaluated model names.
func Models() []string { return llm.ModelNames() }

// CaseNames lists the supported IEEE cases.
func CaseNames() []string { return cases.Names() }

// LoadCase returns a fresh copy of a supported IEEE case ("case14",
// "IEEE 118", "300", ...).
func LoadCase(name string) (*Network, error) { return cases.Load(name) }

// CaseSummaries returns the Table 2 inventory.
func CaseSummaries() ([]Summary, error) { return cases.Summaries() }

// SolveACOPF runs the primal-dual interior-point AC optimal power flow.
func SolveACOPF(n *Network) (*ACOPFSolution, error) {
	return opf.SolveACOPF(n, opf.Options{})
}

// SolveDCOPF runs the linearized DC optimal power flow baseline.
func SolveDCOPF(n *Network) (*ACOPFSolution, error) {
	return opf.SolveDCOPF(n, opf.Options{})
}

// SolvePowerFlow runs a Newton-Raphson AC power flow with reactive-limit
// enforcement.
func SolvePowerFlow(n *Network) (*PowerFlowResult, error) {
	return powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
}

// AnalyzeContingencies runs a full parallel N-1 sweep from the given base
// power flow.
func AnalyzeContingencies(n *Network, base *PowerFlowResult) (*ContingencySet, error) {
	return contingency.Analyze(n, base, contingency.Options{})
}

// AssessQuality scores a solution on the paper's 0-10 quality rubric.
func AssessQuality(n *Network, sol *ACOPFSolution) Quality {
	return opf.AssessQuality(n, sol)
}

// RunCascade propagates one initiating event through protection-style
// trip rounds (N-k) on the zero-clone stacked-view path.
func RunCascade(n *Network, base *PowerFlowResult, ev CascadeEvent, opts ScenarioOptions) (*CascadeResult, error) {
	return scenario.Cascade(n, base, ev, opts)
}

// RunCascadeSweep cascades every in-service branch outage as a seed,
// optionally DC pre-screening the provably non-cascading ones.
func RunCascadeSweep(n *Network, base *PowerFlowResult, opts ScenarioOptions) (*CascadeSweepResult, error) {
	return scenario.Sweep(n, base, opts)
}

// RunEpisode drives a time-series of operating points (load curve,
// dispatch overrides, maintenance outages) with warm-started re-solves.
func RunEpisode(n *Network, base *PowerFlowResult, steps []EpisodeStep, opts ScenarioOptions) (*EpisodeResult, error) {
	return scenario.Episode(n, base, steps, opts)
}

// RunReliabilityMC estimates loss-of-load, overload and cascade
// probabilities by seeded Monte Carlo sampling; fixed seeds replay
// bit-identically at any worker count.
func RunReliabilityMC(n *Network, base *PowerFlowResult, mo MCOptions) (*MCResult, error) {
	return scenario.RunMC(n, base, mo)
}

// Options configures a GridMind conversational session.
type Options struct {
	// Model selects a simulated backend profile (default ModelGPTO3).
	// Ignored when Endpoint is set.
	Model string
	// Endpoint, when non-empty, routes completions to a live
	// chat-completions HTTP endpoint instead of the simulated backend.
	Endpoint string
	// Salt seeds the simulated backend's randomness (run index).
	Salt int64
	// RealLatency makes simulated backend latency elapse on the wall
	// clock (off by default: latency is tracked on a virtual clock and
	// reported, not slept).
	RealLatency bool
	// Engine, when non-nil, is the shared compiled-artifact store this
	// session draws from; nil selects the process-wide default engine.
	Engine *Engine
	// Client, when non-nil, is used directly as the LLM backend and takes
	// precedence over Model and Endpoint. This is how a session rides a
	// resilient multi-deployment Gateway (see NewGateway) or any custom
	// backend. Latency is recorded as reported by the client; the session
	// clock stays real.
	Client Client
	// Metrics, when non-nil, is the observability registry the session's
	// tool layer and per-agent instrumentation publish on; nil selects the
	// engine's registry. Embedders scrape it with WritePrometheus without
	// running the server (see MetricsRegistry()).
	Metrics *MetricsRegistry
}

// GridMind is a conversational session: planner, coordinator, the ACOPF
// and contingency agents, their tools, and the shared context.
type GridMind struct {
	coord    *agents.Coordinator
	recorder *metrics.Recorder
	clock    simclock.Clock
	start    time.Time
	met      *obs.Registry
}

// New creates a session.
func New(o Options) *GridMind {
	var client llm.Client
	switch {
	case o.Client != nil:
		client = o.Client
	case o.Endpoint != "":
		name := o.Model
		if name == "" {
			name = "remote"
		}
		client = &llm.HTTPClient{Endpoint: o.Endpoint, ModelName: name}
	default:
		name := o.Model
		if name == "" {
			name = ModelGPTO3
		}
		profile, ok := llm.ProfileByName(name)
		if !ok {
			profile, _ = llm.ProfileByName(ModelGPTO3)
			profile.Name = name
		}
		client = llm.NewSim(profile)
	}
	var clock simclock.Clock
	absorb := false
	// Only the plain in-process simulated backend runs on a virtual clock;
	// remote endpoints and injected clients (gateways may mix real and
	// simulated deployments) keep real time.
	if o.Client == nil && o.Endpoint == "" && !o.RealLatency {
		clock = simclock.NewSim(time.Now())
		absorb = true
	} else {
		clock = simclock.Real{}
		absorb = o.RealLatency && o.Endpoint == "" && o.Client == nil
	}
	rec := metrics.NewRecorder()
	coord := agents.NewCoordinator(agents.Config{
		Client:        client,
		Clock:         clock,
		Recorder:      rec,
		Engine:        o.Engine,
		AbsorbLatency: absorb,
		Salt:          o.Salt,
		Metrics:       o.Metrics,
	})
	met := o.Metrics
	if met == nil {
		met = coord.Engine.Metrics()
	}
	return &GridMind{coord: coord, recorder: rec, clock: clock, start: clock.Now(), met: met}
}

// Engine returns the session's shared artifact store.
func (g *GridMind) Engine() *Engine { return g.coord.Engine }

// Ask routes one natural-language request through the planner and agents.
func (g *GridMind) Ask(ctx context.Context, query string) (*Exchange, error) {
	return g.coord.Handle(ctx, query)
}

// Session exposes the shared context for artifact inspection.
func (g *GridMind) Session() *session.Context { return g.coord.Session }

// Metrics returns all recorded interactions (the paper's per-turn
// instrumentation rows). For the typed counter/gauge/histogram registry,
// see MetricsRegistry.
func (g *GridMind) Metrics() []Interaction { return g.recorder.Rows() }

// MetricsRegistry returns the observability registry the session
// publishes on — the one from Options.Metrics, or the engine's when none
// was given. Embedders scrape it directly:
//
//	gm.MetricsRegistry().WritePrometheus(w)
func (g *GridMind) MetricsRegistry() *MetricsRegistry { return g.met }

// WriteMetricsCSV dumps the instrumentation log.
func (g *GridMind) WriteMetricsCSV(w io.Writer) error {
	rec := g.recorder
	return rec.WriteCSV(w)
}

// Workflow returns the accumulated multi-step workflow trace.
func (g *GridMind) Workflow() []agents.WorkflowStep { return g.coord.Workflow() }

// ElapsedSession returns total session time on the session clock
// (simulated seconds for simulated backends).
func (g *GridMind) ElapsedSession() time.Duration {
	return g.clock.Now().Sub(g.start)
}

// PersistSession serializes the session state for later resumption.
func (g *GridMind) PersistSession(w io.Writer) error {
	return g.coord.Session.Persist(w)
}

// RestoreSession replaces the live session with a previously persisted
// one (the §3.4 "seamless resumption"): the agents and tools are rebound
// to the restored context.
func (g *GridMind) RestoreSession(r io.Reader) error {
	sess, err := session.RestoreWithEngine(r, g.clock.Now, g.coord.Engine)
	if err != nil {
		return err
	}
	g.coord = agents.NewCoordinator(agents.Config{
		Client:        g.coord.ACOPF.Client,
		Clock:         g.clock,
		Recorder:      g.recorder,
		Session:       sess,
		Engine:        g.coord.Engine,
		AbsorbLatency: g.coord.ACOPF.AbsorbLatency,
		Salt:          g.coord.ACOPF.Salt,
		Metrics:       g.met,
	})
	return nil
}

// NewGateway builds a resilient LLM client over the named deployments:
// pluggable routing (priority, round-robin, least-latency, weighted),
// per-deployment circuit breakers with half-open probing, background
// health checks, capped-exponential retry with jitter, and fallback
// chains. Pass it to New via Options.Client.
func NewGateway(deps []GatewayDeployment, cfg GatewayConfig) (*Gateway, error) {
	return gateway.New(deps, cfg)
}

// NewSimClient returns the deterministic simulated backend for one of the
// evaluated model profiles, for use as a Gateway deployment.
func NewSimClient(model string) (Client, error) {
	profile, ok := llm.ProfileByName(model)
	if !ok {
		return nil, fmt.Errorf("gridmind: unknown model %q (supported: %v)", model, Models())
	}
	return llm.NewSim(profile), nil
}

// NewHTTPClient returns a chat-completions client for a live endpoint,
// for use as a Gateway deployment.
func NewHTTPClient(endpoint, model string) Client {
	return &llm.HTTPClient{Endpoint: endpoint, ModelName: model}
}

// NewChaosClient wraps any client with seeded, deterministic fault
// injection (errors, latency spikes, stalls, malformed responses) for
// resilience testing.
func NewChaosClient(c Client, spec FaultSpec) Client {
	return llm.NewFaultClient(c, spec)
}

// ValidateModel returns an error when the model name is not one of the
// evaluated profiles.
func ValidateModel(name string) error {
	if _, ok := llm.ProfileByName(name); !ok {
		return fmt.Errorf("gridmind: unknown model %q (supported: %v)", name, Models())
	}
	return nil
}
