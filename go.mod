module gridmind

go 1.24
