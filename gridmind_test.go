package gridmind_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"gridmind"
	"gridmind/internal/llm"
)

func TestPublicAPISolversDirect(t *testing.T) {
	net, err := gridmind.LoadCase("case14")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := gridmind.SolveACOPF(net)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Solved || sol.ObjectiveCost < 7900 || sol.ObjectiveCost > 8300 {
		t.Fatalf("case14 OPF: solved=%t cost=%v", sol.Solved, sol.ObjectiveCost)
	}
	pf, err := gridmind.SolvePowerFlow(net)
	if err != nil {
		t.Fatal(err)
	}
	if !pf.Converged {
		t.Fatal("power flow did not converge")
	}
	q := gridmind.AssessQuality(net, sol)
	if q.OverallScore <= 0 {
		t.Fatalf("quality score %v", q.OverallScore)
	}
	dc, err := gridmind.SolveDCOPF(net)
	if err != nil {
		t.Fatal(err)
	}
	if dc.ObjectiveCost > sol.ObjectiveCost {
		t.Fatalf("DC cost %v above AC cost %v", dc.ObjectiveCost, sol.ObjectiveCost)
	}
}

func TestPublicAPIContingencies(t *testing.T) {
	net, err := gridmind.LoadCase("case30")
	if err != nil {
		t.Fatal(err)
	}
	base, err := gridmind.SolvePowerFlow(net)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := gridmind.AnalyzeContingencies(net, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Outages) != 41 {
		t.Fatalf("outages %d", len(rs.Outages))
	}
}

func TestPublicAPIConversation(t *testing.T) {
	gm := gridmind.New(gridmind.Options{Model: gridmind.ModelGPT5Nano, Salt: 1})
	ex, err := gm.Ask(context.Background(), "Solve IEEE 14")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Success {
		t.Fatalf("failed: %s", ex.Reply)
	}
	if gm.ElapsedSession() <= 0 {
		t.Fatal("session clock did not advance")
	}
	if len(gm.Metrics()) != 1 {
		t.Fatal("metrics not recorded")
	}
	var buf bytes.Buffer
	if err := gm.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), gridmind.ModelGPT5Nano) {
		t.Fatal("CSV lacks model name")
	}
	var sess bytes.Buffer
	if err := gm.PersistSession(&sess); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sess.String(), "case14") {
		t.Fatal("persisted session lacks case")
	}
}

func TestPublicAPIUnknownModelFallsBack(t *testing.T) {
	if err := gridmind.ValidateModel("made-up"); err == nil {
		t.Fatal("unknown model validated")
	}
	if err := gridmind.ValidateModel(gridmind.ModelGPT5); err != nil {
		t.Fatal(err)
	}
	// New() with an unknown model still works (defaults profile, keeps name).
	gm := gridmind.New(gridmind.Options{Model: "custom-model"})
	ex, err := gm.Ask(context.Background(), "Solve IEEE 14")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Turns[0].Model != "custom-model" {
		t.Fatalf("model name %q", ex.Turns[0].Model)
	}
}

func TestPublicAPIRemoteEndpoint(t *testing.T) {
	// Full network path: simulated backend served over chat-completions,
	// consumed through the HTTP client — the deployment mode for live
	// LLM gateways.
	profile, _ := llm.ProfileByName(gridmind.ModelGPTO3)
	srv := httptest.NewServer(llm.Handler(llm.NewSim(profile)))
	defer srv.Close()

	gm := gridmind.New(gridmind.Options{Endpoint: srv.URL, Model: gridmind.ModelGPTO3})
	ex, err := gm.Ask(context.Background(), "Solve IEEE 30")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Success {
		t.Fatalf("remote-mode exchange failed: %s", ex.Reply)
	}
	if !strings.Contains(ex.Reply, "case30") {
		t.Fatalf("reply %q", ex.Reply)
	}
}

func TestSessionPersistRestoreAcrossInstances(t *testing.T) {
	gm := gridmind.New(gridmind.Options{Model: gridmind.ModelGPTO3, Salt: 11})
	ctx := context.Background()
	if _, err := gm.Ask(ctx, "Solve IEEE 14"); err != nil {
		t.Fatal(err)
	}
	if _, err := gm.Ask(ctx, "Increase the load at bus 9 to 45 MW"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gm.PersistSession(&buf); err != nil {
		t.Fatal(err)
	}

	// A brand-new instance resumes the session: same diffs, fresh
	// artifact, and follow-up conversations continue from that state.
	gm2 := gridmind.New(gridmind.Options{Model: gridmind.ModelGPTO3, Salt: 12})
	if err := gm2.RestoreSession(&buf); err != nil {
		t.Fatal(err)
	}
	if len(gm2.Session().Diffs()) != 1 {
		t.Fatalf("restored diffs %d, want 1", len(gm2.Session().Diffs()))
	}
	sol, fresh := gm2.Session().ACOPF()
	if sol == nil || !fresh {
		t.Fatal("restored artifact not fresh")
	}
	ex, err := gm2.Ask(ctx, "What is the current network status?")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Success || !strings.Contains(ex.Reply, "1 modification") {
		t.Fatalf("resumed conversation wrong: %q", ex.Reply)
	}
}

func TestModelsAndCases(t *testing.T) {
	if len(gridmind.Models()) != 6 {
		t.Fatal("model list wrong")
	}
	if len(gridmind.CaseNames()) != 5 {
		t.Fatal("case list wrong")
	}
	sums, err := gridmind.CaseSummaries()
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Name != "case14" {
		t.Fatalf("summaries %v", sums)
	}
}
