// What-if analysis: the paper's motivating workflow — iteratively adjust
// load levels, re-solve, and inspect economic impacts, all through
// conversation, with the session diff log keeping every step replayable.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"gridmind"
)

func main() {
	gm := gridmind.New(gridmind.Options{Model: gridmind.ModelGPT5Mini})
	ctx := context.Background()

	queries := []string{
		"Solve IEEE 30",
		"Increase the load at bus 7 to 40 MW",
		"Increase the load at bus 7 by 10 MW", // relative change: agent grounds it via status first
		"Decrease the load at bus 7 by 25 MW",
		"What is the current network status?",
	}
	for _, q := range queries {
		ex, err := gm.Ask(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\nA: %s\n\n", q, ex.Reply)
	}

	// The diff log makes the study reproducible: print it.
	fmt.Println("diff log:")
	for _, d := range gm.Session().Diffs() {
		fmt.Printf("  #%d %-12s %s\n", d.Seq, d.Kind, d.Note)
	}

	// Persist the session for resumption (§3.4 "session persistence").
	f, err := os.CreateTemp("", "gridmind-session-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := gm.PersistSession(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsession persisted to", f.Name())
}
