// Multi-agent workflow: the paper's Figure 9 — a single compound request
// flows through the planner, the ACOPF agent solves, then the CA agent
// assesses T-1 risk over the shared validated context, and the workflow
// trace records every step.
package main

import (
	"context"
	"fmt"
	"log"

	"gridmind"
)

func main() {
	gm := gridmind.New(gridmind.Options{Model: gridmind.ModelClaude4Son})

	query := "Solve IEEE 30 case, then run contingency analysis and identify critical elements for reinforcement"
	ex, err := gm.Ask(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q:", query)
	fmt.Println()
	fmt.Println(ex.Reply)

	fmt.Println("\nworkflow trace:")
	for _, s := range gm.Workflow() {
		fmt.Printf("  step %d [%s] %-12s %q\n", s.Seq, s.Status, s.Agent+":", s.Query)
	}

	// Cross-agent context: both artifacts live in one session, stamped
	// with the same state hash, so the CA agent verifiably analyzed the
	// exact network the ACOPF agent solved.
	sol, _ := gm.Session().ACOPF()
	sweep, _ := gm.Session().CASweep()
	fmt.Printf("\nshared context: ACOPF cost %.2f $/h + %d-outage sweep, state %s\n",
		sol.ObjectiveCost, len(sweep.Outages), gm.Session().DiffHash()[:8])

	fmt.Println("\ninstrumentation (the paper's reliability-trend logging):")
	for _, row := range gm.Metrics() {
		fmt.Printf("  %-12s %6.1fs  %4d prompt-tok %4d completion-tok  %d tool call(s)  success=%t\n",
			row.Agent, row.Latency.Seconds(), row.PromptTokens, row.CompletionTokens, row.ToolCalls, row.Success)
	}
}
