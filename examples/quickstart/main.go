// Quickstart: the abridged dialogue from the paper's §3.2 — solve a case
// conversationally, run a what-if, and inspect the audited session state.
package main

import (
	"context"
	"fmt"
	"log"

	"gridmind"
)

func main() {
	gm := gridmind.New(gridmind.Options{Model: gridmind.ModelGPTO3})
	ctx := context.Background()

	// "User: Solve IEEE 118."
	ex, err := gm.Ask(ctx, "Solve IEEE 118")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q: Solve IEEE 118")
	fmt.Println("A:", ex.Reply)
	fmt.Printf("   (%.1f s simulated end-to-end, %d tool call(s))\n\n",
		ex.Latency.Seconds(), ex.Turns[0].ToolCalls)

	// "User: Increase the load for bus 10 to 50MW."
	ex, err = gm.Ask(ctx, "Increase the load for bus 10 to 50 MW")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q: Increase the load for bus 10 to 50 MW")
	fmt.Println("A:", ex.Reply)

	// Every number above is auditable: the structured artifact lives in
	// the session with provenance.
	sol, fresh := gm.Session().ACOPF()
	fmt.Printf("\naudit: stored objective cost %.2f $/h (fresh=%t), diff log has %d entr(ies)\n",
		sol.ObjectiveCost, fresh, len(gm.Session().Diffs()))
	for _, p := range gm.Session().Provenance() {
		fmt.Printf("  provenance: %-22s state=%s %s\n", p.Tool, p.DiffHash[:8], p.Detail)
	}
}
