// Reliability study: drive the contingency-analysis engine directly via
// the public solver API (no agent in the loop) — the paper's T-1
// enumeration, criticality ranking, and reinforcement recommendations.
package main

import (
	"fmt"
	"log"

	"gridmind"
	"gridmind/internal/contingency"
)

func main() {
	net, err := gridmind.LoadCase("case118")
	if err != nil {
		log.Fatal(err)
	}
	base, err := gridmind.SolvePowerFlow(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base case: %d buses, losses %.1f MW, min voltage %.4f p.u.\n\n",
		net.NumBuses(), base.LossP, base.MinVm)

	rs, err := gridmind.AnalyzeContingencies(net, base)
	if err != nil {
		log.Fatal(err)
	}
	stats := rs.Summarize()
	fmt.Printf("N-1 sweep: %d outages — %d secure, %d with overloads, %d islanding, %d unsolved\n\n",
		stats.Total, stats.Secure, stats.WithOverload, stats.Islanding, stats.Unsolved)

	fmt.Println("top-5 critical elements (composite ranking):")
	for rank, o := range rs.Top(5, contingency.Composite) {
		fmt.Printf("  %d. %s\n", rank+1, o.Describe())
	}

	fmt.Println("\ntop-5 under the thermal-first ranking (the divergent analysis style):")
	for rank, o := range rs.Top(5, contingency.ThermalFirst) {
		fmt.Printf("  %d. branch %d (%d-%d): max loading %.0f%%\n",
			rank+1, o.Branch, o.FromBusID, o.ToBusID, o.MaxLoadingPct)
	}

	// Reinforcement guidance mirrors §3.2.3: corridors appearing in many
	// post-contingency overload lists are the reinforcement candidates.
	hits := map[int]int{}
	for _, o := range rs.Outages {
		for _, ov := range o.Overloads {
			hits[ov.Branch]++
		}
	}
	best, n := -1, 0
	for b, c := range hits {
		if c > n {
			best, n = b, c
		}
	}
	if best >= 0 {
		br := net.Branches[best]
		fmt.Printf("\nrecurring bottleneck: branch %d (%d-%d) overloads under %d different outages — reinforce this corridor first\n",
			best, net.Buses[br.From].ID, net.Buses[br.To].ID, n)
	}
}
