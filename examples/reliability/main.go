// Reliability study: drive the contingency-analysis engine directly via
// the public solver API (no agent in the loop) — the paper's T-1
// enumeration, criticality ranking, and reinforcement recommendations.
// With -n2, the N-1 critical list additionally seeds an N-2 double-outage
// screening pass (DC pre-screen + zero-clone AC verification).
package main

import (
	"flag"
	"fmt"
	"log"

	"gridmind"
	"gridmind/internal/contingency"
)

func main() {
	n2 := flag.Bool("n2", false, "seed N-2 pairs from the N-1 critical list and screen them")
	caseName := flag.String("case", "case118", "IEEE case to analyze")
	flag.Parse()

	net, err := gridmind.LoadCase(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	base, err := gridmind.SolvePowerFlow(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base case: %d buses, losses %.1f MW, min voltage %.4f p.u.\n\n",
		net.NumBuses(), base.LossP, base.MinVm)

	rs, err := gridmind.AnalyzeContingencies(net, base)
	if err != nil {
		log.Fatal(err)
	}
	stats := rs.Summarize()
	fmt.Printf("N-1 sweep: %d outages — %d secure, %d with overloads, %d islanding, %d unsolved\n\n",
		stats.Total, stats.Secure, stats.WithOverload, stats.Islanding, stats.Unsolved)

	fmt.Println("top-5 critical elements (composite ranking):")
	for rank, o := range rs.Top(5, contingency.Composite) {
		fmt.Printf("  %d. %s\n", rank+1, o.Describe())
	}

	fmt.Println("\ntop-5 under the thermal-first ranking (the divergent analysis style):")
	for rank, o := range rs.Top(5, contingency.ThermalFirst) {
		fmt.Printf("  %d. branch %d (%d-%d): max loading %.0f%%\n",
			rank+1, o.Branch, o.FromBusID, o.ToBusID, o.MaxLoadingPct)
	}

	// Reinforcement guidance mirrors §3.2.3: corridors appearing in many
	// post-contingency overload lists are the reinforcement candidates.
	hits := map[int]int{}
	for _, o := range rs.Outages {
		for _, ov := range o.Overloads {
			hits[ov.Branch]++
		}
	}
	best, n := -1, 0
	for b, c := range hits {
		if c > n {
			best, n = b, c
		}
	}
	if best >= 0 {
		br := net.Branches[best]
		fmt.Printf("\nrecurring bottleneck: branch %d (%d-%d) overloads under %d different outages — reinforce this corridor first\n",
			best, net.Buses[br.From].ID, net.Buses[br.To].ID, n)
	}

	if !*n2 {
		return
	}
	// N-2 screening: pairs seeded from the critical list, ranked by a
	// linear LODF pre-screen, survivors AC-verified on the zero-clone
	// view path.
	n2rs, err := contingency.AnalyzeN2(net, base, rs, contingency.N2Options{})
	if err != nil {
		log.Fatal(err)
	}
	n2stats := n2rs.Summarize()
	fmt.Printf("\nN-2 screening: %d candidate pairs — %d certified secure by the DC pre-screen, %d islanding, %d with overloads, %d unsolved\n\n",
		n2stats.Total, n2rs.Screened, n2stats.Islanding, n2stats.WithOverload, n2stats.Unsolved)
	fmt.Println("top-5 critical double outages:")
	for rank, o := range n2rs.Top(5, contingency.Composite) {
		fmt.Printf("  %d. %s\n", rank+1, o.Describe())
	}
}
