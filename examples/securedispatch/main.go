// Secure dispatch: the paper's §B.4 comparative study — economic versus
// security-constrained operation — run both conversationally (through the
// extension tool the registry picked up without core changes) and
// directly against the SCOPF engine.
package main

import (
	"context"
	"fmt"
	"log"

	"gridmind"
	"gridmind/internal/scopf"
)

func main() {
	// Conversational path: the planner routes the comparison intent to
	// the ACOPF agent, which discovers the registered extension tool.
	gm := gridmind.New(gridmind.Options{Model: gridmind.ModelGPT5})
	q := "Solve IEEE 57, then compare economic versus security-constrained operation"
	ex, err := gm.Ask(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q: %s\n\n%s\n", q, ex.Reply)

	// Direct path: full control over the SCOPF loop.
	net, err := gridmind.LoadCase("case57")
	if err != nil {
		log.Fatal(err)
	}
	res, err := scopf.Solve(net, scopf.Options{Screen: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndirect SCOPF study:")
	fmt.Printf("  economic cost:        %10.2f $/h\n", res.EconomicCost)
	fmt.Printf("  secure cost:          %10.2f $/h\n", res.Solution.ObjectiveCost)
	fmt.Printf("  security premium:     %10.2f $/h\n", res.SecurityPremium)
	fmt.Printf("  violations:           %d -> %d over %d round(s)\n",
		res.ViolationsBefore, res.ViolationsAfter, res.Rounds)
	fmt.Printf("  fully N-1 secure:     %t\n", res.Secure)
	fmt.Printf("  tightened corridors:  %d branches\n", len(res.TightenedBranches))
}
