// Scenario study: drive the scenario engine directly via the public API
// (no agent in the loop) — an N-k cascade sweep with the DC pre-screen, a
// deep-dive cascade on the worst seed, a 24-step diurnal episode with a
// solar profile, and a seeded Monte Carlo reliability estimate with
// Wilson confidence intervals.
package main

import (
	"flag"
	"fmt"
	"log"

	"gridmind"
	"gridmind/internal/cases"
)

func main() {
	caseName := flag.String("case", "case57", "IEEE case to study")
	samples := flag.Int("samples", 500, "Monte Carlo draws")
	seed := flag.Int64("seed", 2026, "Monte Carlo RNG seed")
	flag.Parse()

	net, err := gridmind.LoadCase(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	base, err := gridmind.SolvePowerFlow(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base case %s: %d buses, losses %.1f MW, min voltage %.4f p.u.\n\n",
		net.Name, net.NumBuses(), base.LossP, base.MinVm)

	// 1. Cascade sweep: every in-service branch seeds a protection-style
	// trip sequence; the DC screen certifies the provably boring seeds.
	sw, err := gridmind.RunCascadeSweep(net, base, gridmind.ScenarioOptions{DCScreen: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cascade sweep: %d seeds — %d screened, %d stable, %d cascading, %d islanding, %d collapsing, %d depth-limited\n",
		sw.Seeds, sw.Screened, sw.Stable, sw.Cascaded, sw.Islanded, sw.Collapsed, sw.DepthLimited)

	if sw.WorstSeed >= 0 {
		r, err := gridmind.RunCascade(net, base,
			gridmind.CascadeEvent{Branches: []int{sw.WorstSeed}}, gridmind.ScenarioOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nworst seed (branch %d, severity %.1f): outcome %s after %d round(s)\n",
			sw.WorstSeed, sw.WorstSeverity, r.Outcome, r.Depth)
		for _, sg := range r.Stages {
			fmt.Printf("  stage %d: trip %v — max loading %.1f%%, min voltage %.4f p.u., %d overload(s), next trips %v\n",
				sg.Index, sg.Trips, sg.MaxLoadingPct, sg.MinVoltagePU, len(sg.Overloads), sg.NextTrips)
		}
		if r.LoadShedMW > 0 {
			fmt.Printf("  estimated load shed: %.1f MW\n", r.LoadShedMW)
		}
	}

	// 2. Diurnal episode: the double-peak load curve plus a solar unit,
	// warm-started step to step.
	const steps = 24
	load := cases.LoadCurve(steps, 11)
	solar := cases.SolarCurve(steps, 12)
	g := len(net.Gens) - 1
	capMW := net.Gens[g].PMax / 2
	eps := make([]gridmind.EpisodeStep, steps)
	for i := range eps {
		eps[i] = gridmind.EpisodeStep{
			LoadScale: load[i],
			GenP:      map[int]float64{g: solar[i] * capMW},
		}
	}
	ep, err := gridmind.RunEpisode(net, base, eps, gridmind.ScenarioOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiurnal episode: %d/%d steps converged; tightest margin %.1f%% at step %d; min voltage %.4f p.u.\n",
		ep.Converged, steps, ep.MinMarginPct, ep.WorstStep, ep.MinVoltagePU)

	// 3. Monte Carlo reliability with Wilson 95% intervals.
	mc, err := gridmind.RunReliabilityMC(net, base, gridmind.MCOptions{
		Samples:          *samples,
		Seed:             *seed,
		BranchOutageProb: 0.01,
		GenOutageProb:    0.005,
		LoadSigma:        0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmonte carlo (%d draws, seed %d):\n", mc.Samples, mc.Seed)
	fmt.Printf("  loss-of-load probability %.4f  [%.4f, %.4f]\n", mc.LossOfLoad.P, mc.LossOfLoad.Lo, mc.LossOfLoad.Hi)
	fmt.Printf("  overload probability     %.4f  [%.4f, %.4f]\n", mc.Overload.P, mc.Overload.Lo, mc.Overload.Hi)
	fmt.Printf("  cascade probability      %.4f  [%.4f, %.4f]\n", mc.CascadeProb.P, mc.CascadeProb.Lo, mc.CascadeProb.Hi)
	fmt.Printf("  expected shed per draw   %.2f MW\n", mc.MeanShedMW)
}
