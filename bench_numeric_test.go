package gridmind_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"gridmind"
	"gridmind/internal/cases"
	"gridmind/internal/contingency"
	"gridmind/internal/engine"
	"gridmind/internal/fleet"
	"gridmind/internal/model"
	"gridmind/internal/obs"
	"gridmind/internal/opf"
	"gridmind/internal/powerflow"
	"gridmind/internal/ptdf"
	"gridmind/internal/scenario"
	"gridmind/internal/scopf"
	"gridmind/internal/session"
)

// Numeric-core benchmarks tracked in BENCH_numeric.json: Ybus assembly,
// a full Newton solve, the N-1 branch and generation sweeps, the N-2
// screening pipeline, the interior-point ACOPF, the SCOPF loop, the
// session snapshot cache, the multi-session serving path, the N-k
// cascade sweep, the Monte Carlo reliability loop and the distributed
// fleet sweep, each over the paper-scale cases. Regenerate the JSON
// with:
//
//	go test -run '^$' -bench 'BuildYbus|NewtonSolve|N1Sweep|GenSweep|N2Screen|ACOPF|SCOPF|SessionNetwork|ConcurrentAsk|Cascade|MCReliability|RegistryHotPath|FleetSweep' -benchmem .

func benchBuildYbus(b *testing.B, caseName string) {
	n := cases.MustLoad(caseName)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if y := model.BuildYbus(n); y.N != len(n.Buses) {
			b.Fatal("bad ybus")
		}
	}
}

func BenchmarkBuildYbusCase57(b *testing.B)  { benchBuildYbus(b, "case57") }
func BenchmarkBuildYbusCase118(b *testing.B) { benchBuildYbus(b, "case118") }
func BenchmarkBuildYbusCase300(b *testing.B) { benchBuildYbus(b, "case300") }

func benchNewtonSolve(b *testing.B, caseName string) {
	n := cases.MustLoad(caseName)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := powerflow.Solve(n, powerflow.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("not converged")
		}
	}
}

func BenchmarkNewtonSolveCase57(b *testing.B)  { benchNewtonSolve(b, "case57") }
func BenchmarkNewtonSolveCase118(b *testing.B) { benchNewtonSolve(b, "case118") }
func BenchmarkNewtonSolveCase300(b *testing.B) { benchNewtonSolve(b, "case300") }

func benchN1Sweep(b *testing.B, caseName string) {
	n := cases.MustLoad(caseName)
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := contingency.Analyze(n, base, contingency.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkN1SweepCase57(b *testing.B)      { benchN1Sweep(b, "case57") }
func BenchmarkN1SweepCase118Full(b *testing.B) { benchN1Sweep(b, "case118") }
func BenchmarkN1SweepCase300(b *testing.B)     { benchN1Sweep(b, "case300") }

// BenchmarkGenSweepCase57 measures the N-1 generation sweep — since the
// gen-outage fast path, a zero-clone workload that re-derives the PV/PQ
// classification in place instead of materializing a network per unit.
func BenchmarkGenSweepCase57(b *testing.B) {
	n := cases.MustLoad("case57")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := contingency.AnalyzeGenOutages(n, contingency.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkN2ScreenCase57 measures the N-2 screening pipeline on the
// seeded critical candidate set: pair seeding, LODF-composition DC
// pre-screen and zero-clone AC verification. Workers pinned to 1 and the
// candidate set capped so allocs/op are machine-independent (the CI guard
// protocol); the N-1 seeding sweep runs outside the measured loop.
func BenchmarkN2ScreenCase57(b *testing.B) {
	n := cases.MustLoad("case57")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	n1, err := contingency.Analyze(n, base, contingency.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := contingency.AnalyzeN2(n, base, n1, contingency.N2Options{
			Options:  contingency.Options{Workers: 1},
			MaxPairs: 200,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Outages) == 0 {
			b.Fatal("empty N-2 sweep")
		}
	}
}

func benchACOPF(b *testing.B, caseName string) {
	n := cases.MustLoad(caseName)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := opf.SolveACOPF(n, opf.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Solved {
			b.Fatal("not solved")
		}
	}
}

func BenchmarkACOPFCase14(b *testing.B)  { benchACOPF(b, "case14") }
func BenchmarkACOPFCase30(b *testing.B)  { benchACOPF(b, "case30") }
func BenchmarkACOPFCase57(b *testing.B)  { benchACOPF(b, "case57") }
func BenchmarkACOPFCase118(b *testing.B) { benchACOPF(b, "case118") }
func BenchmarkACOPFCase300(b *testing.B) { benchACOPF(b, "case300") }

// benchSession builds a case57 session carrying a typical what-if diff
// log (the serving-path state reconstruction workload).
func benchSession(b *testing.B) *session.Context {
	b.Helper()
	c := session.New(nil)
	if _, err := c.LoadCase("case57"); err != nil {
		b.Fatal(err)
	}
	mods := []session.Modification{
		{Kind: session.ModSetLoad, BusID: 9, PMW: 40, QMVAr: 12},
		{Kind: session.ModScaleLoad, Factor: 1.05},
		{Kind: session.ModOutageBranch, Branch: 3},
		{Kind: session.ModRestoreBranch, Branch: 3},
		{Kind: session.ModSetGenP, Gen: 1, PMW: 55},
	}
	for _, m := range mods {
		if err := c.Apply(m); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkSessionNetworkSnapshot prices Context.Network() on the
// snapshot-cache hit path — what every tool call pays per state access
// since the multi-session engine (zero clones, zero replays).
func BenchmarkSessionNetworkSnapshot(b *testing.B) {
	c := benchSession(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Network(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionNetworkReplay prices the same access with the snapshot
// dropped each iteration — the pre-engine clone+replay cost the cache
// removes from every tool call.
func BenchmarkSessionNetworkReplay(b *testing.B) {
	c := benchSession(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.DropSnapshot()
		if _, err := c.Network(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentAsk8 measures multi-session serving throughput: 8
// sessions sharing one artifact engine answer "Solve IEEE 14" concurrently
// (each ask runs a full coordinator round and an interior-point ACOPF).
// ns/op is the per-ask wall time at 8-way session concurrency.
func BenchmarkConcurrentAsk8(b *testing.B) {
	eng := gridmind.NewEngine()
	const k = 8
	sessions := make([]*gridmind.GridMind, k)
	for i := range sessions {
		sessions[i] = gridmind.New(gridmind.Options{Engine: eng})
	}
	// Warm one session so compilation happens outside the measured region
	// (steady-state serving is the quantity of interest).
	if _, err := sessions[0].Ask(context.Background(), "Solve IEEE 14"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var next int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if int(atomic.AddInt64(&next, 1)) > b.N {
					return
				}
				ex, err := sessions[w].Ask(context.Background(), "Solve IEEE 14")
				if err != nil || !ex.Success {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		b.Fatal("concurrent ask failed")
	}
}

// BenchmarkCascadeCase57 measures the full N-k cascade sweep with the
// lazy-LODF DC pre-screen: every in-service branch seeds a
// trip-threshold propagation to depth 3 on pooled zero-clone contexts.
// Workers pinned to 1 and artifacts (Ybus/topology/PTDF) built outside
// the measured loop, matching the CI guard protocol.
func BenchmarkCascadeCase57(b *testing.B) {
	n := cases.MustLoad("case57")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	ptdfM, err := ptdf.Build(n)
	if err != nil {
		b.Fatal(err)
	}
	opts := scenario.Options{
		BaseYbus: model.BuildYbus(n),
		Topology: model.NewTopology(n),
		Pool:     scenario.NewPool(),
		DCScreen: true,
		PTDF:     ptdfM,
		Workers:  1,
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw, err := scenario.Sweep(n, base, opts)
		if err != nil {
			b.Fatal(err)
		}
		if sw.Seeds == 0 || sw.Screened == 0 {
			b.Fatal("degenerate sweep")
		}
	}
}

// BenchmarkMCReliability measures the seeded Monte Carlo reliability
// loop on case57: 64 draws per op through the cascade engine on pooled
// contexts, single worker (the machine-independent guard protocol).
func BenchmarkMCReliability(b *testing.B) {
	n := cases.MustLoad("case57")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := scenario.Options{
		BaseYbus: model.BuildYbus(n),
		Topology: model.NewTopology(n),
		Pool:     scenario.NewPool(),
		Workers:  1,
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mc, err := scenario.RunMC(n, base, scenario.MCOptions{
			Samples:          64,
			Seed:             2026,
			BranchOutageProb: 0.01,
			GenOutageProb:    0.005,
			LoadSigma:        0.03,
			Cascade:          opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		if mc.Samples != 64 {
			b.Fatal("bad sample count")
		}
	}
}

func BenchmarkSCOPFCase57(b *testing.B) {
	n := cases.MustLoad("case57")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Workers pinned to 1 so allocs/op is machine-independent (the CI
		// guard protocol; see cmd/gridmind-bench/benchguard.go). MaxRounds 2
		// bounds the loop the same way on every machine.
		res, err := scopf.Solve(n, scopf.Options{Screen: true, MaxRounds: 2, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds < 1 {
			b.Fatal("no rounds")
		}
	}
}

// BenchmarkRegistryHotPath measures the obs instrument hot path every
// engine lookup, gateway attempt and tool call rides: a pre-registered
// counter Inc plus a latency-histogram Observe. The contract is zero
// allocations per op — registration allocates once up front, publishing
// never does — and the CI benchguard pins the 0-alloc baseline exactly.
func BenchmarkRegistryHotPath(b *testing.B) {
	met := obs.NewRegistry()
	c := met.Counter("bench_hot_total", "hot-path benchmark counter", "path", "hot")
	h := met.Histogram("bench_hot_seconds", "hot-path benchmark histogram", nil, "path", "hot")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.0042)
	}
}

// BenchmarkFleetSweepCase57 prices the distributed N-1 sweep end to end:
// deterministic shard split, HTTP/JSON dispatch to two workers with
// independent engines, engine-threaded shard solves and the offset-based
// merge. The workers' engines are warmed by an untimed first sweep, so
// the delta against BenchmarkN1SweepCase57 reads as pure fleet protocol
// overhead (serialization + loopback HTTP + merge). Sweep IDs rotate per
// iteration — a repeated ID would hit the workers' idempotency memo and
// benchmark the replay path instead of the sweep.
func BenchmarkFleetSweepCase57(b *testing.B) {
	urls := make([]string, 2)
	for i := range urls {
		w := fleet.NewWorker(fmt.Sprintf("bench-w%d", i), engine.New(), nil, obs.NewRegistry())
		srv := httptest.NewServer(w.Handler())
		defer srv.Close()
		urls[i] = srv.URL
	}
	coord, err := fleet.NewCoordinator(fleet.Config{Workers: urls})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New()
	n, err := eng.Pristine("case57")
	if err != nil {
		b.Fatal(err)
	}
	branches := n.InServiceBranches()
	ctx := context.Background()
	if _, err := coord.SweepN1(ctx, "bench-fleet-warm", "case57", branches, gridmindFleetOpts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := coord.SweepN1(ctx, fmt.Sprintf("bench-fleet-%d", i), "case57", branches, gridmindFleetOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Outages) != len(branches) {
			b.Fatal("short sweep")
		}
	}
}

// gridmindFleetOpts mirrors the scenario CI smoke configuration.
var gridmindFleetOpts = fleet.SweepOptions{DCScreen: true}
