// Package gridmind_test holds the benchmark harness: one testing.B target
// per paper table/figure (E1-E5 in DESIGN.md) plus the ablation benches
// (A1-A4) for the design decisions the architecture section calls out.
//
// Figure/table benches run scaled-down configurations so -bench=. stays
// tractable; cmd/gridmind-bench regenerates the full paper-scale tables.
package gridmind_test

import (
	"context"
	"testing"

	"gridmind"
	"gridmind/internal/cases"
	"gridmind/internal/contingency"
	"gridmind/internal/experiments"
	"gridmind/internal/llm"
	"gridmind/internal/mat"
	"gridmind/internal/model"
	"gridmind/internal/opf"
	"gridmind/internal/powerflow"
	"gridmind/internal/sensitivity"
	"gridmind/internal/sparse"
)

// --- E1: Figure 3 (left) — success rate by model ---

func BenchmarkFigure3SuccessRate(b *testing.B) {
	cfg := experiments.Config{Models: []string{llm.ModelGPTO3}, Runs: 1, Case: "case30"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3Success(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].SuccessRate != 100 {
			b.Fatalf("success rate %v", rows[0].SuccessRate)
		}
	}
}

// --- E2: Figure 3 (middle) — execution time distribution ---

func BenchmarkFigure3TimeDistribution(b *testing.B) {
	cfg := experiments.Config{Models: []string{llm.ModelGPTO4Mini}, Runs: 3, Case: "case30"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3Distribution(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Figure 3 (right) — execution time vs case complexity ---

func BenchmarkFigure3CaseScaling(b *testing.B) {
	cfg := experiments.Config{
		Models: []string{llm.ModelGPT5Mini}, Runs: 1,
		Cases: []string{"case14", "case30", "case57"},
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3Scaling(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Table 1 — CA agent performance ---

func BenchmarkTable1ContingencyAgent(b *testing.B) {
	cfg := experiments.Config{Models: []string{llm.ModelGPTO3}, Runs: 1, Case: "case30"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows[0].CriticalLines) == 0 {
			b.Fatal("no critical lines")
		}
	}
}

// --- E5: Table 2 — case inventory ---

func BenchmarkTable2CaseInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// --- Core solver benchmarks (the deterministic substrate) ---
//
// The ACOPF and SCOPF benchmarks live in bench_numeric_test.go: they are
// tracked in BENCH_numeric.json and guarded by the CI bench-regression job.

func benchPowerFlow(b *testing.B, caseName string) {
	n := cases.MustLoad(caseName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := powerflow.Solve(n, powerflow.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerFlowCase118(b *testing.B) { benchPowerFlow(b, "case118") }
func BenchmarkPowerFlowCase300(b *testing.B) { benchPowerFlow(b, "case300") }

func BenchmarkN1SweepCase118(b *testing.B) {
	n := cases.MustLoad("case118")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contingency.Analyze(n, base, contingency.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1: sparse vs dense linear solve on a power-system matrix ---

// dcMatrix builds the DC susceptance matrix of the case (the archetypal
// power-system sparsity pattern) in triplet form.
func dcMatrix(n *model.Network) *sparse.COO {
	nb := len(n.Buses)
	coo := sparse.NewCOO(nb, nb)
	for i := 0; i < nb; i++ {
		coo.Add(i, i, 1) // shunt regularization keeps it nonsingular
	}
	for _, br := range n.Branches {
		if !br.InService || br.X == 0 {
			continue
		}
		bb := 1 / br.X
		coo.Add(br.From, br.From, bb)
		coo.Add(br.To, br.To, bb)
		coo.Add(br.From, br.To, -bb)
		coo.Add(br.To, br.From, -bb)
	}
	return coo
}

func BenchmarkAblationSparseVsDenseSparse(b *testing.B) {
	n := cases.MustLoad("case300")
	csc := dcMatrix(n).ToCSC()
	rhs := make([]float64, len(n.Buses))
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.SolveCSC(csc, rhs, sparse.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSparseVsDenseDense(b *testing.B) {
	n := cases.MustLoad("case300")
	nb := len(n.Buses)
	dense := mat.NewDense(nb, nb)
	dcMatrix(n).Each(func(i, j int, v float64) { dense.Add(i, j, v) })
	rhs := make([]float64, nb)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.SolveDense(dense, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A2: contingency cache on repeated analyses (§3.4) ---

func BenchmarkAblationContingencyCacheCold(b *testing.B) {
	n := cases.MustLoad("case30")
	base, _ := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contingency.Analyze(n, base, contingency.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationContingencyCacheWarm(b *testing.B) {
	n := cases.MustLoad("case30")
	base, _ := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	cache := contingency.NewCache()
	opts := contingency.Options{Cache: cache, CacheKeyPrefix: "state0"}
	if _, err := contingency.Analyze(n, base, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contingency.Analyze(n, base, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A3: parallel contingency sweep scaling (§3.2.2) ---

func benchSweepWorkers(b *testing.B, workers int) {
	n := cases.MustLoad("case118")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contingency.Analyze(n, base, contingency.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParallelSweep1(b *testing.B) { benchSweepWorkers(b, 1) }
func BenchmarkAblationParallelSweep4(b *testing.B) { benchSweepWorkers(b, 4) }

// --- A5: LODF+1Q screening vs full AC contingency sweep ---

func BenchmarkAblationScreeningOff(b *testing.B) {
	n := cases.MustLoad("case118")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contingency.Analyze(n, base, contingency.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScreeningOn(b *testing.B) {
	n := cases.MustLoad("case118")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := contingency.Analyze(n, base, contingency.Options{DCScreen: true})
		if err != nil {
			b.Fatal(err)
		}
		if rs.Screened == 0 {
			b.Fatal("screening inactive")
		}
	}
}

// --- Extension workloads: sensitivity (SCOPF is in bench_numeric_test.go) ---

func BenchmarkSensitivityProbes(b *testing.B) {
	n := cases.MustLoad("case30")
	base, err := opf.SolveACOPF(n, opf.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sensitivity.LoadImpacts(n, base, []int{7, 21, 30}, 2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A4: warm vs flat start post-outage power flow (§3.1) ---

func benchOutageStart(b *testing.B, warm bool) {
	n := cases.MustLoad("case118")
	base, err := powerflow.Solve(n, powerflow.Options{EnforceQLimits: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := contingency.Options{NoWarmStart: !warm}
	branches := n.InServiceBranches()[:20]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range branches {
			contingency.AnalyzeOne(n, base, k, opts)
		}
	}
}

func BenchmarkAblationWarmStart(b *testing.B) { benchOutageStart(b, true) }
func BenchmarkAblationFlatStart(b *testing.B) { benchOutageStart(b, false) }

// --- End-to-end conversational turn through the public API ---

func BenchmarkConversationalTurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gm := gridmind.New(gridmind.Options{Model: gridmind.ModelGPTO3, Salt: int64(i)})
		ex, err := gm.Ask(context.Background(), "Solve IEEE 30")
		if err != nil {
			b.Fatal(err)
		}
		if !ex.Success {
			b.Fatal("turn failed")
		}
	}
}
